package failure

import "fmt"

// Digest is the exported face of the analyzer's 128-bit fingerprint hash
// (fingerprint.go), for callers outside this package that need stable,
// collision-resistant content keys — the planning service keys its plan
// cache on a Digest over the canonicalized problem spec and planner
// configuration. Two independently mixed 64-bit lanes make accidental
// collisions astronomically unlikely (~2^-128 per pair), so a cache may key
// on the digest alone without retaining the digested content.
//
// The zero Digest is not ready for use; start with NewDigest.
type Digest struct {
	h fpHash
}

// NewDigest returns a fresh digest with the package's fixed seed, so equal
// write sequences always produce equal sums across processes and runs.
func NewDigest() *Digest {
	return &Digest{h: newFPHash()}
}

// Int folds one integer into the digest.
func (d *Digest) Int(v int) { d.h.int(v) }

// Int64 folds one 64-bit integer into the digest.
func (d *Digest) Int64(v int64) { d.h.word(uint64(v)) }

// Float folds one float64 into the digest (by bit pattern; NaNs with
// different payloads digest differently).
func (d *Digest) Float(f float64) { d.h.float(f) }

// Bool folds one boolean into the digest.
func (d *Digest) Bool(b bool) { d.h.bool(b) }

// Str folds a length-prefixed string into the digest, so consecutive
// strings cannot alias ("ab","c" digests differently from "a","bc").
func (d *Digest) Str(s string) { d.h.str(s) }

// Bytes folds a length-prefixed byte slice into the digest.
func (d *Digest) Bytes(b []byte) { d.h.str(string(b)) }

// Sum finalizes a copy of the digest state and returns the 128-bit sum as
// 32 lowercase hex digits. The digest remains usable: further writes
// continue from the pre-Sum state.
func (d *Digest) Sum() string {
	fp := d.h.sum()
	return fmt.Sprintf("%016x%016x", fp.hi, fp.lo)
}
