package failure

import (
	"sync"
	"sync/atomic"

	"repro/internal/tsn"
)

// cacheShards is the number of independently locked cache segments. 16
// keeps lock contention negligible for the worker counts that make sense
// on vehicle-planning workloads while the per-shard maps stay dense.
const cacheShards = 16

// Cache memoizes per-scenario recovery verdicts across Analyze calls. The
// key is a canonical 128-bit fingerprint of (recovery mechanism, timing
// configuration, flow set, topology edges, switch ASIL assignment, failure
// set), so a hit replays exactly the verdict the NBF simulation would
// recompute — training revisits near-identical TSSDN states across Env
// resets, planner workers and epochs, and every hit skips the TT scheduler
// entirely.
//
// A Cache is safe for concurrent use and is meant to be shared: the
// planner hands one instance to all of a run's environments. Capacity is
// bounded; a full shard evicts an arbitrary entry per insert (random
// replacement), which is cheap and adequate for the heavy-tailed revisit
// distribution of RL exploration.
type Cache struct {
	perShard  int
	shards    [cacheShards]cacheShard
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu sync.Mutex
	m  map[fingerprint]cacheEntry
}

type cacheEntry struct {
	ok bool
	er []tsn.Pair // NBF error message of a failing scenario (nil when ok)
}

// NewCache returns a verdict cache bounded to roughly `entries` verdicts.
// entries <= 0 selects a default of 64k.
func NewCache(entries int) *Cache {
	if entries <= 0 {
		entries = 1 << 16
	}
	per := entries / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[fingerprint]cacheEntry)
	}
	return c
}

func (c *Cache) shard(fp fingerprint) *cacheShard {
	return &c.shards[fp.lo%cacheShards]
}

// lookup returns the memoized verdict for fp. The returned ER slice is a
// copy; callers may retain it.
func (c *Cache) lookup(fp fingerprint) (ok bool, er []tsn.Pair, hit bool) {
	s := c.shard(fp)
	s.mu.Lock()
	e, found := s.m[fp]
	s.mu.Unlock()
	if !found {
		c.misses.Add(1)
		return false, nil, false
	}
	c.hits.Add(1)
	if len(e.er) > 0 {
		er = append([]tsn.Pair(nil), e.er...)
	}
	return e.ok, er, true
}

// store memoizes one verdict, evicting an arbitrary entry when the shard
// is full.
func (c *Cache) store(fp fingerprint, ok bool, er []tsn.Pair) {
	var e cacheEntry
	e.ok = ok
	if len(er) > 0 {
		e.er = append([]tsn.Pair(nil), er...)
	}
	s := c.shard(fp)
	s.mu.Lock()
	if _, exists := s.m[fp]; !exists && len(s.m) >= c.perShard {
		for k := range s.m {
			delete(s.m, k)
			c.evictions.Add(1)
			break
		}
	}
	s.m[fp] = e
	s.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
	// Evictions counts entries dropped to make room since the cache was
	// created; a high rate relative to Misses means the capacity is too
	// small for the run's working set.
	Evictions int64
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the lifetime hit/miss counters and current entry count.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load()}
	for i := range c.shards {
		c.shards[i].mu.Lock()
		st.Entries += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return st
}
