package failure

import (
	"fmt"
	"sort"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// Diagnosis lists every minimal non-recoverable non-safe fault of a
// topology: the complete weak-point report, as opposed to Analyze's
// first-failure answer that drives the SOAG. A failure set is minimal when
// no proper subset is itself non-recoverable.
type Diagnosis struct {
	// MinimalFailures are the minimal non-recoverable switch sets, sorted
	// by size then lexicographically.
	MinimalFailures []nbf.Failure
	// ER holds the error message for each minimal failure (parallel
	// slice).
	ER [][]tsn.Pair
	// NBFCalls counts recovery simulations performed.
	NBFCalls int
	// MaxOrder is the highest failure order considered.
	MaxOrder int
}

// OK reports whether no non-safe fault is unrecoverable.
func (d *Diagnosis) OK() bool { return len(d.MinimalFailures) == 0 }

// Diagnose enumerates failures from LOW order to high (the opposite of
// Algorithm 3, which hunts for any counterexample fast): an unrecoverable
// set is recorded and its supersets skipped, yielding exactly the minimal
// non-recoverable sets with probability >= R.
func (a *Analyzer) Diagnose(gt *graph.Graph, assign *asil.Assignment, fs tsn.FlowSet) (*Diagnosis, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	ids, prob, err := a.candidateNodes(gt, assign)
	if err != nil {
		return nil, err
	}
	d := &Diagnosis{MaxOrder: maxOrder(ids, prob, a.R)}

	var minimalSorted [][]int
	supersetOfMinimal := func(set []int) bool {
		for _, m := range minimalSorted {
			if subsetOfSorted(m, set) {
				return true
			}
		}
		return false
	}

	for order := 0; order <= d.MaxOrder; order++ {
		var loopErr error
		graph.Combinations(ids, order, func(subset []int) bool {
			set := append([]int(nil), subset...)
			sort.Ints(set)
			p := 1.0
			for _, v := range set {
				p *= prob[v]
			}
			if p < a.R {
				return true // safe fault
			}
			if supersetOfMinimal(set) {
				return true // already covered by a smaller failure
			}
			gf := nbf.Failure{Nodes: set}
			d.NBFCalls++
			_, er, err := a.NBF.Recover(gt, gf, a.Net, fs)
			if err != nil {
				loopErr = err
				return false
			}
			if len(er) != 0 {
				minimalSorted = append(minimalSorted, set)
				d.MinimalFailures = append(d.MinimalFailures, gf)
				d.ER = append(d.ER, er)
			}
			return true
		})
		if loopErr != nil {
			return nil, fmt.Errorf("diagnose order %d: %w", order, loopErr)
		}
	}
	return d, nil
}

// String renders the diagnosis for reports.
func (d *Diagnosis) String() string {
	if d.OK() {
		return fmt.Sprintf("no non-safe unrecoverable faults (max order %d, %d NBF calls)", d.MaxOrder, d.NBFCalls)
	}
	out := fmt.Sprintf("%d minimal unrecoverable failures (max order %d, %d NBF calls):\n",
		len(d.MinimalFailures), d.MaxOrder, d.NBFCalls)
	for i, f := range d.MinimalFailures {
		out += fmt.Sprintf("  %v -> %v\n", f, d.ER[i])
	}
	return out
}
