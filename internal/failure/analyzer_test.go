package failure

import (
	"math/rand"
	"testing"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// dualHomed builds nES end stations each connected to both of two
// switches. Any single switch failure is survivable.
func dualHomed(t testing.TB, nES int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < nES; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	swA := g.AddVertex("swA", graph.KindSwitch)
	swB := g.AddVertex("swB", graph.KindSwitch)
	for i := 0; i < nES; i++ {
		mustEdge(t, g, i, swA)
		mustEdge(t, g, i, swB)
	}
	mustEdge(t, g, swA, swB)
	return g
}

func mustEdge(t testing.TB, g *graph.Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v, 1); err != nil {
		t.Fatal(err)
	}
}

// assignLevels builds an Assignment where each listed switch gets its level
// and every edge of gt inherits min(endpoint levels), with end stations
// treated as ASIL-D — the invariant of §IV-B.
func assignLevels(gt *graph.Graph, levels map[int]asil.Level) *asil.Assignment {
	a := asil.NewAssignment()
	for sw, lvl := range levels {
		a.Switches[sw] = lvl
	}
	lvlOf := func(v int) asil.Level {
		if gt.Kind(v) == graph.KindEndStation {
			return asil.LevelD
		}
		if l, ok := levels[v]; ok {
			return l
		}
		return asil.LevelD
	}
	for _, e := range gt.Edges() {
		a.SetLink(e.U, e.V, asil.Min(lvlOf(e.U), lvlOf(e.V)))
	}
	return a
}

func flow(id, src, dst int) tsn.Flow {
	net := tsn.DefaultNetwork()
	return tsn.Flow{ID: id, Src: src, Dsts: []int{dst}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}
}

func newAnalyzer(r float64) *Analyzer {
	return &Analyzer{
		Lib: asil.DefaultLibrary(),
		NBF: &nbf.StatelessRecovery{MaxAlternatives: 3},
		Net: tsn.DefaultNetwork(),
		R:   r,
	}
}

func TestAnalyzerAcceptsDualHomedNetwork(t *testing.T) {
	g := dualHomed(t, 3)
	// ASIL-C switches: single failure 1e-5 >= 1e-6, dual 1e-10 < 1e-6.
	a := assignLevels(g, map[int]asil.Level{3: asil.LevelC, 4: asil.LevelC})
	fs := tsn.FlowSet{flow(0, 0, 1), flow(1, 1, 2)}
	res, err := newAnalyzer(1e-6).Analyze(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("expected OK, got failure %v ER %v", res.Failure, res.ER)
	}
	if res.MaxOrder != 1 {
		t.Fatalf("MaxOrder = %d, want 1", res.MaxOrder)
	}
	if res.NBFCalls == 0 {
		t.Fatal("analysis should simulate the NBF")
	}
}

func TestAnalyzerRejectsSingleHomedNetwork(t *testing.T) {
	// One ES hangs off a single switch: that switch is a single point of
	// failure at ASIL-A (prob 1e-3 >= R).
	g := graph.New()
	g.AddVertex("", graph.KindEndStation) // 0
	g.AddVertex("", graph.KindEndStation) // 1
	sw := g.AddVertex("", graph.KindSwitch)
	mustEdge(t, g, 0, sw)
	mustEdge(t, g, 1, sw)
	a := assignLevels(g, map[int]asil.Level{sw: asil.LevelA})
	fs := tsn.FlowSet{flow(0, 0, 1)}
	res, err := newAnalyzer(1e-6).Analyze(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("single point of failure accepted")
	}
	if len(res.Failure.Nodes) == 0 || len(res.ER) == 0 {
		t.Fatalf("failure scenario not reported: %+v", res)
	}
}

func TestAnalyzerHighASILSinglePointIsSafeFault(t *testing.T) {
	// The same single-homed network with an ASIL-D switch: failure prob
	// 1e-6 >= R=1e-6 still counts; but with R just above it, it is safe.
	g := graph.New()
	g.AddVertex("", graph.KindEndStation)
	g.AddVertex("", graph.KindEndStation)
	sw := g.AddVertex("", graph.KindSwitch)
	mustEdge(t, g, 0, sw)
	mustEdge(t, g, 1, sw)
	a := assignLevels(g, map[int]asil.Level{sw: asil.LevelD})
	fs := tsn.FlowSet{flow(0, 0, 1)}

	// cfp(D) = 1 − e^{−1e-9·1000} is just below 1e-6, so at R = 1e-6 the
	// single ASIL-D failure is a safe fault — the property §VI-A uses to
	// keep the Original ORION topology valid without backups.
	res, err := newAnalyzer(1e-6).Analyze(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("ASIL-D single point at R=1e-6 must be a safe fault: %+v", res)
	}
	if res.MaxOrder != 0 {
		t.Fatalf("MaxOrder = %d, want 0", res.MaxOrder)
	}

	// Tightening R below cfp(D) makes the same failure non-safe.
	res, err = newAnalyzer(9e-7).Analyze(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("at R=9e-7 the ASIL-D single point must be checked and fail")
	}
}

func TestAnalyzerOrderZeroChecksBaseSchedulability(t *testing.T) {
	// Disconnected demand: even with no failures, flows cannot be
	// established, so the analysis must fail at order 0.
	g := graph.New()
	g.AddVertex("", graph.KindEndStation)
	g.AddVertex("", graph.KindEndStation)
	sw := g.AddVertex("", graph.KindSwitch)
	mustEdge(t, g, 0, sw) // ES 1 left unconnected
	a := assignLevels(g, map[int]asil.Level{sw: asil.LevelD})
	fs := tsn.FlowSet{flow(0, 0, 1)}
	res, err := newAnalyzer(2e-6).Analyze(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("unschedulable base network accepted")
	}
	if !res.Failure.Empty() {
		t.Fatalf("order-0 failure should be empty, got %v", res.Failure)
	}
}

func TestAnalyzerSupersetPruningReducesNBFCalls(t *testing.T) {
	// Three dual-homed ES on two ASIL-A switches plus a third backup
	// switch: maxord 2 at R=1e-6 with ASIL-A components.
	g := dualHomed(t, 3)
	swC := g.AddVertex("swC", graph.KindSwitch)
	for i := 0; i < 3; i++ {
		mustEdge(t, g, i, swC) // triple-homed now
	}
	levels := map[int]asil.Level{3: asil.LevelA, 4: asil.LevelA, 5: asil.LevelA}
	a := assignLevels(g, levels)
	fs := tsn.FlowSet{flow(0, 0, 1)}

	pruned := newAnalyzer(1e-6)
	resPruned, err := pruned.Analyze(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	unpruned := newAnalyzer(1e-6)
	unpruned.DisableSupersetPruning = true
	resUnpruned, err := unpruned.Analyze(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	if resPruned.OK != resUnpruned.OK {
		t.Fatalf("pruning changed the verdict: %v vs %v", resPruned.OK, resUnpruned.OK)
	}
	if !resPruned.OK {
		t.Fatalf("triple-homed network should pass: %+v", resPruned)
	}
	if resPruned.NBFCalls >= resUnpruned.NBFCalls {
		t.Fatalf("pruning did not reduce NBF calls: %d vs %d", resPruned.NBFCalls, resUnpruned.NBFCalls)
	}
}

func TestAnalyzerValidation(t *testing.T) {
	g := dualHomed(t, 2)
	a := assignLevels(g, map[int]asil.Level{2: asil.LevelC, 3: asil.LevelC})
	fs := tsn.FlowSet{flow(0, 0, 1)}

	an := newAnalyzer(1e-6)
	an.Lib = nil
	if _, err := an.Analyze(g, a, fs); err == nil {
		t.Error("nil library accepted")
	}
	an = newAnalyzer(1e-6)
	an.NBF = nil
	if _, err := an.Analyze(g, a, fs); err == nil {
		t.Error("nil NBF accepted")
	}
	an = newAnalyzer(0)
	if _, err := an.Analyze(g, a, fs); err == nil {
		t.Error("invalid R accepted")
	}
	an = newAnalyzer(1e-6)
	an.Net = tsn.Network{}
	if _, err := an.Analyze(g, a, fs); err == nil {
		t.Error("invalid network accepted")
	}
	an = newAnalyzer(1e-6)
	bad := a.Clone()
	bad.Switches[2] = asil.Level(9)
	if _, err := an.Analyze(g, bad, fs); err == nil {
		t.Error("invalid switch ASIL accepted")
	}
}

func TestMaxOrder(t *testing.T) {
	prob := map[int]float64{1: 1e-3, 2: 1e-3, 3: 1e-5}
	ids := []int{1, 2, 3}
	if got := maxOrder(ids, prob, 1e-6); got != 2 {
		t.Fatalf("maxOrder = %d, want 2 (1e-3*1e-3 = 1e-6 >= R)", got)
	}
	if got := maxOrder(ids, prob, 1e-2); got != 0 {
		t.Fatalf("maxOrder = %d, want 0", got)
	}
	if got := maxOrder(nil, nil, 1e-6); got != 0 {
		t.Fatalf("empty maxOrder = %d, want 0", got)
	}
}

func TestSubsetOfSorted(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{nil, []int{1, 2}, true},
		{[]int{1}, []int{1, 2}, true},
		{[]int{2}, []int{1, 2}, true},
		{[]int{3}, []int{1, 2}, false},
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{1, 3}, []int{1, 2, 3}, true},
		{[]int{1, 2, 3}, []int{1, 2}, false},
	}
	for _, c := range cases {
		if got := subsetOfSorted(c.a, c.b); got != c.want {
			t.Errorf("subsetOfSorted(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAnalyzerFlowLevelRedundancyChecksEndStations(t *testing.T) {
	g := dualHomed(t, 2)
	a := assignLevels(g, map[int]asil.Level{2: asil.LevelC, 3: asil.LevelC})
	fs := tsn.FlowSet{flow(0, 0, 1)}

	an := newAnalyzer(9e-7)
	an.FlowLevelRedundancy = true
	res, err := an.Analyze(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	// ES failures (ASIL-D, prob ≈1e-6 >= 9e-7) now enter the enumeration;
	// an ES failure kills its own flows, so the guarantee must fail.
	if res.OK {
		t.Fatal("flow-level mode should find ES single points of failure")
	}
	// With the standard goal, ES failures are safe faults again.
	an.R = 1e-6
	res, err = an.Analyze(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("expected OK at R=1e-6, got %+v", res)
	}
}

func TestAnalyzerMatchesBruteForceOnRandomNetworks(t *testing.T) {
	// Cross-check Algorithm 3 (+ Eq. 6 reduction argument) against the
	// exhaustive node+link enumeration on small random topologies.
	lib := asil.DefaultLibrary()
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nES := 2 + rng.Intn(2)
		nSW := 2 + rng.Intn(2)
		g := graph.New()
		for i := 0; i < nES; i++ {
			g.AddVertex("", graph.KindEndStation)
		}
		for i := 0; i < nSW; i++ {
			g.AddVertex("", graph.KindSwitch)
		}
		levels := make(map[int]asil.Level, nSW)
		for i := 0; i < nSW; i++ {
			levels[nES+i] = asil.Levels()[rng.Intn(4)]
		}
		// Random ES-SW and SW-SW wiring, guaranteeing each ES >= 1 link.
		for i := 0; i < nES; i++ {
			mustEdge(t, g, i, nES+rng.Intn(nSW))
			if rng.Intn(2) == 0 {
				mustEdge(t, g, i, nES+rng.Intn(nSW))
			}
		}
		for i := 0; i < nSW; i++ {
			for j := i + 1; j < nSW; j++ {
				if rng.Intn(2) == 0 {
					mustEdge(t, g, nES+i, nES+j)
				}
			}
		}
		a := assignLevels(g, levels)
		fs := tsn.FlowSet{flow(0, 0, 1)}

		an := newAnalyzer(1e-6)
		resA, err := an.Analyze(g, a, fs)
		if err != nil {
			t.Fatalf("seed %d: analyzer: %v", seed, err)
		}
		bf := &BruteForce{Lib: lib, NBF: an.NBF, Net: an.Net, R: an.R}
		resB, err := bf.Analyze(g, a, fs)
		if err != nil {
			t.Fatalf("seed %d: brute force: %v", seed, err)
		}
		if resA.OK != resB.OK {
			t.Fatalf("seed %d: analyzer OK=%v but brute force OK=%v (analyzer failure %v, brute failure %v)",
				seed, resA.OK, resB.OK, resA.Failure, resB.Failure)
		}
		if resA.OK && resA.NBFCalls > resB.NBFCalls {
			t.Fatalf("seed %d: switch-only analysis used more NBF calls (%d) than brute force (%d)",
				seed, resA.NBFCalls, resB.NBFCalls)
		}
	}
}

func TestBruteForceValidation(t *testing.T) {
	g := dualHomed(t, 2)
	a := assignLevels(g, map[int]asil.Level{2: asil.LevelC, 3: asil.LevelC})
	fs := tsn.FlowSet{flow(0, 0, 1)}
	bf := &BruteForce{}
	if _, err := bf.Analyze(g, a, fs); err == nil {
		t.Error("nil deps accepted")
	}
	bf = &BruteForce{Lib: asil.DefaultLibrary(), NBF: &nbf.StatelessRecovery{}, Net: tsn.DefaultNetwork(), R: 0}
	if _, err := bf.Analyze(g, a, fs); err == nil {
		t.Error("invalid R accepted")
	}
	// Missing link ASIL must error.
	bf = &BruteForce{Lib: asil.DefaultLibrary(), NBF: &nbf.StatelessRecovery{}, Net: tsn.DefaultNetwork(), R: 1e-6}
	incomplete := asil.NewAssignment()
	incomplete.Switches[2] = asil.LevelC
	incomplete.Switches[3] = asil.LevelC
	if _, err := bf.Analyze(g, incomplete, fs); err == nil {
		t.Error("missing link ASIL accepted")
	}
}
