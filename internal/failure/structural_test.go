package failure

import (
	"testing"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

func TestStructuralWeakPointsSingleHomed(t *testing.T) {
	// Star: the single switch separates every demanded pair.
	g := graph.New()
	for i := 0; i < 3; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	sw := g.AddVertex("", graph.KindSwitch)
	for i := 0; i < 3; i++ {
		mustEdge(t, g, i, sw)
	}
	fs := tsn.FlowSet{flow(0, 0, 1), flow(1, 1, 2)}
	wps := StructuralWeakPoints(g, fs)
	if len(wps) != 1 || wps[0].Switch != sw {
		t.Fatalf("weak points = %v", wps)
	}
	if len(wps[0].Pairs) != 2 {
		t.Fatalf("broken pairs = %v", wps[0].Pairs)
	}
}

func TestStructuralWeakPointsDualHomed(t *testing.T) {
	g := dualHomed(t, 3)
	fs := tsn.FlowSet{flow(0, 0, 1), flow(1, 1, 2)}
	if wps := StructuralWeakPoints(g, fs); wps != nil {
		t.Fatalf("dual-homed net has no structural weak points, got %v", wps)
	}
}

func TestStructuralWeakPointsIgnoreUnusedSwitch(t *testing.T) {
	g := dualHomed(t, 2)
	g.AddVertex("isolated-sw", graph.KindSwitch) // degree 0
	fs := tsn.FlowSet{flow(0, 0, 1)}
	if wps := StructuralWeakPoints(g, fs); wps != nil {
		t.Fatalf("got %v", wps)
	}
}

func TestStructuralWeakPointsAgreeWithAnalyzer(t *testing.T) {
	// Any structural weak point with failure probability >= R must also be
	// rejected by the full analysis.
	g := graph.New()
	g.AddVertex("", graph.KindEndStation)
	g.AddVertex("", graph.KindEndStation)
	sw := g.AddVertex("", graph.KindSwitch)
	mustEdge(t, g, 0, sw)
	mustEdge(t, g, 1, sw)
	a := assignLevels(g, map[int]asil.Level{sw: asil.LevelA})
	fs := tsn.FlowSet{flow(0, 0, 1)}

	wps := StructuralWeakPoints(g, fs)
	if len(wps) != 1 {
		t.Fatalf("weak points = %v", wps)
	}
	res, err := newAnalyzer(1e-6).Analyze(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("analyzer missed a structural weak point at ASIL-A")
	}
	// The analyzer's counterexample must involve the weak switch (or be
	// the order-0 empty failure if base scheduling already failed).
	if !res.Failure.Empty() {
		found := false
		for _, n := range res.Failure.Nodes {
			if n == wps[0].Switch {
				found = true
			}
		}
		if !found {
			t.Fatalf("analyzer failure %v does not involve weak switch %d", res.Failure, wps[0].Switch)
		}
	}
}

var _ = nbf.Failure{}
