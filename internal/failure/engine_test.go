package failure

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/asil"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// comparable projects the deterministic part of a Result: OK, Failure, ER,
// MaxOrder and ScenariosConsidered are bit-identical across the sequential,
// parallel and memoized paths; NBFCalls and the timing fields are not.
func comparable(r Result) Result {
	r.NBFCalls = 0
	r.CacheHits = 0
	r.CacheMisses = 0
	r.Duration = 0
	r.Occupancy = 0
	return r
}

// registryMechanisms instantiates every built-in recovery mechanism, paired
// with whether it targets the flow-level-redundancy analyzer mode.
func registryMechanisms(t *testing.T) []struct {
	mech      nbf.NBF
	flowLevel bool
} {
	t.Helper()
	reg := nbf.NewRegistry()
	var out []struct {
		mech      nbf.NBF
		flowLevel bool
	}
	for _, name := range reg.Names() {
		m, err := reg.New(name)
		if err != nil {
			t.Fatalf("registry: %v", err)
		}
		out = append(out, struct {
			mech      nbf.NBF
			flowLevel bool
		}{m, name == "flow-redundant-greedy"})
	}
	return out
}

// TestEngineMatchesSequentialOnRandomTopologies is the differential
// determinism property of the analysis engine: across randomized
// topologies and every registry NBF, the parallel and/or memoized analyzer
// must return a Result identical to the sequential, uncached one — both on
// a cold cache and when re-analyzing with a warm cache.
func TestEngineMatchesSequentialOnRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lib := asil.DefaultLibrary()
	net := tsn.DefaultNetwork()
	goals := []float64{1e-6, 1e-2}

	cases := 10
	if testing.Short() {
		cases = 4
	}
	for i := 0; i < cases; i++ {
		rc := randomTopology(t, rng)
		for _, m := range registryMechanisms(t) {
			for _, r := range goals {
				base := Analyzer{Lib: lib, NBF: m.mech, Net: net, R: r, FlowLevelRedundancy: m.flowLevel}
				seq := base
				ref, err := seq.Analyze(rc.topo, rc.assign, rc.flows)
				if err != nil {
					t.Fatalf("case %d %s R=%g: sequential: %v", i, m.mech.Name(), r, err)
				}
				cache := NewCache(1 << 12)
				for _, workers := range []int{1, 2, 4, 8} {
					for round := 0; round < 2; round++ { // round 1 hits the warm cache
						a := base
						a.Workers = workers
						a.Cache = cache
						got, err := a.Analyze(rc.topo, rc.assign, rc.flows)
						if err != nil {
							t.Fatalf("case %d %s R=%g workers=%d: %v", i, m.mech.Name(), r, workers, err)
						}
						if !reflect.DeepEqual(comparable(got), comparable(ref)) {
							t.Errorf("case %d %s R=%g workers=%d round=%d: engine diverged:\n%+v\nvs sequential\n%+v",
								i, m.mech.Name(), r, workers, round, comparable(got), comparable(ref))
						}
					}
				}
				// Parallel without a cache must also match.
				a := base
				a.Workers = 4
				got, err := a.Analyze(rc.topo, rc.assign, rc.flows)
				if err != nil {
					t.Fatalf("case %d %s R=%g uncached parallel: %v", i, m.mech.Name(), r, err)
				}
				if !reflect.DeepEqual(comparable(got), comparable(ref)) {
					t.Errorf("case %d %s R=%g: uncached parallel diverged:\n%+v\nvs\n%+v",
						i, m.mech.Name(), r, comparable(got), comparable(ref))
				}
			}
		}
	}
}

// TestWarmCacheSkipsAllSimulations: re-analyzing an identical state with a
// warm shared cache must answer every scenario from the cache — zero NBF
// calls, zero misses — and still return the identical Result.
func TestWarmCacheSkipsAllSimulations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rc := randomTopology(t, rng)
	a := &Analyzer{
		Lib:   asil.DefaultLibrary(),
		NBF:   &nbf.StatelessRecovery{MaxAlternatives: 3},
		Net:   tsn.DefaultNetwork(),
		R:     1e-6,
		Cache: NewCache(1 << 12),
	}
	cold, err := a.Analyze(rc.topo, rc.assign, rc.flows)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 {
		t.Fatalf("cold run reported %d cache hits", cold.CacheHits)
	}
	warm, err := a.Analyze(rc.topo, rc.assign, rc.flows)
	if err != nil {
		t.Fatal(err)
	}
	if warm.NBFCalls != 0 || warm.CacheMisses != 0 {
		t.Fatalf("warm run still simulated: NBFCalls=%d misses=%d", warm.NBFCalls, warm.CacheMisses)
	}
	if warm.CacheHits == 0 {
		t.Fatal("warm run reported no cache hits")
	}
	if !reflect.DeepEqual(comparable(warm), comparable(cold)) {
		t.Fatalf("warm result diverged:\n%+v\nvs\n%+v", comparable(warm), comparable(cold))
	}
}

// TestCacheKeyDistinguishesContext: verdicts must not leak between
// analyzers with different mechanisms or reliability goals.
func TestCacheKeyDistinguishesContext(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rc := randomTopology(t, rng)
	lib := asil.DefaultLibrary()
	net := tsn.DefaultNetwork()
	cache := NewCache(1 << 12)

	a1 := &Analyzer{Lib: lib, NBF: &nbf.StatelessRecovery{MaxAlternatives: 3}, Net: net, R: 1e-6, Cache: cache}
	if _, err := a1.Analyze(rc.topo, rc.assign, rc.flows); err != nil {
		t.Fatal(err)
	}
	// Different mechanism, same cache: everything must miss.
	a2 := &Analyzer{Lib: lib, NBF: &nbf.LoadBalancedRecovery{MaxAlternatives: 4}, Net: net, R: 1e-6, Cache: cache}
	res2, err := a2.Analyze(rc.topo, rc.assign, rc.flows)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHits != 0 {
		t.Fatalf("different NBF got %d cache hits", res2.CacheHits)
	}
	// Different goal, same mechanism: must also miss.
	a3 := &Analyzer{Lib: lib, NBF: &nbf.StatelessRecovery{MaxAlternatives: 3}, Net: net, R: 1e-2, Cache: cache}
	res3, err := a3.Analyze(rc.topo, rc.assign, rc.flows)
	if err != nil {
		t.Fatal(err)
	}
	if res3.CacheHits != 0 {
		t.Fatalf("different R got %d cache hits", res3.CacheHits)
	}
}

// TestCacheBounded: the cache must not grow past its configured capacity.
func TestCacheBounded(t *testing.T) {
	c := NewCache(32)
	for i := 0; i < 10000; i++ {
		c.store(fingerprint{hi: uint64(i) * 0x9e3779b97f4a7c15, lo: uint64(i)}, i%2 == 0, nil)
	}
	if st := c.Stats(); st.Entries > 32 {
		t.Fatalf("cache grew to %d entries (cap 32)", st.Entries)
	}
	// Overwriting an existing key must not evict.
	c2 := NewCache(cacheShards)
	fp := fingerprint{hi: 1, lo: 1}
	c2.store(fp, true, nil)
	c2.store(fp, true, nil)
	ok, _, hit := c2.lookup(fp)
	if !hit || !ok {
		t.Fatal("overwritten entry lost")
	}
}

// TestEngineSharedCacheConcurrentAnalyzers exercises the pool and the
// shared cache under the race detector: several analyzers, each with its
// own worker pool, analyze random states concurrently against one cache —
// the planner's worker topology.
func TestEngineSharedCacheConcurrentAnalyzers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	lib := asil.DefaultLibrary()
	net := tsn.DefaultNetwork()
	cache := NewCache(1 << 10)

	const goroutines = 4
	cases := make([]randomCase, goroutines)
	refs := make([]Result, goroutines)
	for i := range cases {
		cases[i] = randomTopology(t, rng)
		seq := &Analyzer{Lib: lib, NBF: &nbf.StatelessRecovery{MaxAlternatives: 3}, Net: net, R: 1e-6}
		ref, err := seq.Analyze(cases[i].topo, cases[i].assign, cases[i].flows)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := &Analyzer{
				Lib: lib, NBF: &nbf.StatelessRecovery{MaxAlternatives: 3}, Net: net, R: 1e-6,
				Workers: 4, Cache: cache,
			}
			for round := 0; round < 3; round++ {
				got, err := a.Analyze(cases[g].topo, cases[g].assign, cases[g].flows)
				if err != nil {
					errs[g] = err
					return
				}
				if !reflect.DeepEqual(comparable(got), comparable(refs[g])) {
					t.Errorf("goroutine %d round %d diverged from sequential", g, round)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestCacheEvictionCounter: Stats().Evictions must count exactly the
// entries dropped to make room — overwrites and in-capacity stores are
// not evictions.
func TestCacheEvictionCounter(t *testing.T) {
	c := NewCache(cacheShards) // capacity one entry per shard
	fp := func(i int) fingerprint {
		// lo picks the shard; keep everything in shard 0.
		return fingerprint{hi: uint64(i), lo: uint64(i) * cacheShards}
	}
	c.store(fp(1), true, nil)
	c.store(fp(1), false, nil) // overwrite: no eviction
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("Evictions after in-capacity stores = %d, want 0", st.Evictions)
	}
	for i := 2; i <= 4; i++ {
		c.store(fp(i), true, nil) // each displaces the shard's only entry
	}
	st := c.Stats()
	if st.Evictions != 3 {
		t.Fatalf("Evictions = %d, want 3", st.Evictions)
	}
	if st.Entries != 1 {
		t.Fatalf("Entries = %d, want 1", st.Entries)
	}
}
