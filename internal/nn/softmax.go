package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// NegInf is the logit value used to disable masked actions: exp(-inf) = 0,
// so masked actions receive zero probability (the Apply_Mask of
// Algorithm 2, line 6).
var NegInf = math.Inf(-1)

// ensureLen grows dst to length n, reusing capacity when possible.
func ensureLen(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// MaskLogits returns a copy of logits with masked-out entries (mask[i] ==
// false) set to -inf. The caller keeps the original logits for the PPO
// buffer (Algorithm 2, line 17 stores the unmasked policy).
func MaskLogits(logits []float64, mask []bool) []float64 {
	return MaskLogitsInto(nil, logits, mask)
}

// MaskLogitsInto is MaskLogits writing into dst (grown as needed and
// returned); dst may alias logits. Pass a scratch slice to avoid the
// per-call allocation on hot paths.
func MaskLogitsInto(dst, logits []float64, mask []bool) []float64 {
	if len(logits) != len(mask) {
		panic(fmt.Sprintf("nn: %d logits vs %d mask bits", len(logits), len(mask)))
	}
	dst = ensureLen(dst, len(logits))
	for i, l := range logits {
		if mask[i] {
			dst[i] = l
		} else {
			dst[i] = NegInf
		}
	}
	return dst
}

// LogSoftmax computes numerically stable log-probabilities. Entries at -inf
// stay -inf. It panics if every entry is -inf.
func LogSoftmax(logits []float64) []float64 {
	return LogSoftmaxInto(nil, logits)
}

// LogSoftmaxInto is LogSoftmax writing into dst (grown as needed and
// returned); dst may alias logits.
func LogSoftmaxInto(dst, logits []float64) []float64 {
	maxL := NegInf
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	if math.IsInf(maxL, -1) {
		panic("nn: log-softmax over fully masked logits")
	}
	var sum float64
	for _, l := range logits {
		if !math.IsInf(l, -1) {
			sum += math.Exp(l - maxL)
		}
	}
	logZ := maxL + math.Log(sum)
	dst = ensureLen(dst, len(logits))
	for i, l := range logits {
		if math.IsInf(l, -1) {
			dst[i] = NegInf
		} else {
			dst[i] = l - logZ
		}
	}
	return dst
}

// Softmax computes probabilities from logits (masked entries get 0).
func Softmax(logits []float64) []float64 {
	return SoftmaxInto(nil, logits)
}

// SoftmaxInto is Softmax writing into dst (grown as needed and returned);
// dst may alias logits.
func SoftmaxInto(dst, logits []float64) []float64 {
	dst = LogSoftmaxInto(dst, logits)
	for i, l := range dst {
		if math.IsInf(l, -1) {
			dst[i] = 0
		} else {
			dst[i] = math.Exp(l)
		}
	}
	return dst
}

// SampleCategorical draws an index from the categorical distribution given
// by probs using rng. Probabilities must sum to ~1; the last positive entry
// absorbs rounding error.
func SampleCategorical(rng *rand.Rand, probs []float64) int {
	r := rng.Float64()
	var cum float64
	last := -1
	for i, p := range probs {
		if p <= 0 {
			continue
		}
		last = i
		cum += p
		if r < cum {
			return i
		}
	}
	if last == -1 {
		panic("nn: sampling from all-zero distribution")
	}
	return last
}

// Argmax returns the index of the largest value (first on ties).
func Argmax(xs []float64) int {
	best, bestV := -1, NegInf
	for i, v := range xs {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Entropy computes the Shannon entropy of a probability vector in nats.
func Entropy(probs []float64) float64 {
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// LogSoftmaxGrad returns the gradient of logProbs[action] with respect to
// the (masked) logits: e_a − softmax(logits). Masked entries get zero
// gradient, so fully disabled actions never receive updates.
//
// action must index a non-masked (finite) logit: log p(action) is -inf
// there, and the e_a term would otherwise leave a +1 gradient on the
// masked entry, pushing probability mass onto a disabled action. That
// only happens when a caller stores an action inconsistent with its mask,
// so it panics loudly instead of corrupting the policy.
func LogSoftmaxGrad(logits []float64, action int) []float64 {
	return LogSoftmaxGradInto(nil, logits, action)
}

// LogSoftmaxGradInto is LogSoftmaxGrad writing into dst (grown as needed
// and returned). dst must not alias logits: the probabilities are computed
// into dst first and the masked entries are then re-read from logits.
func LogSoftmaxGradInto(dst, logits []float64, action int) []float64 {
	if math.IsInf(logits[action], -1) {
		panic(fmt.Sprintf("nn: log-softmax gradient of masked action %d (logit is -inf)", action))
	}
	dst = SoftmaxInto(dst, logits)
	for i, p := range dst {
		if math.IsInf(logits[i], -1) {
			dst[i] = 0
			continue
		}
		dst[i] = -p
	}
	dst[action]++
	return dst
}

// Scratch is a per-worker arena of reusable action-space vectors, sized
// once from the policy's output dimension. Every exploration step and PPO
// update step needs the same four intermediates (masked logits,
// log-probabilities, probabilities, logit gradient); carving them out of
// one arena keeps the sampling path allocation-free. The buffers are
// mutually disjoint, but each one is overwritten by the next step — callers
// that retain values must copy them out.
type Scratch struct {
	// Logits receives the raw policy output in batched evaluation.
	Logits []float64
	// Masked holds the masked logits of the current step.
	Masked []float64
	// Probs holds softmax probabilities.
	Probs []float64
	// LogProbs holds log-softmax values.
	LogProbs []float64
	// Grad holds the per-step logit gradient of the PPO update.
	Grad []float64
}

// NewScratch builds an arena for an action space of the given size. One
// backing array serves all five vectors.
func NewScratch(actionSpace int) *Scratch {
	if actionSpace <= 0 {
		panic(fmt.Sprintf("nn: scratch action space must be positive, got %d", actionSpace))
	}
	slab := make([]float64, 5*actionSpace)
	s := &Scratch{}
	s.Logits = slab[0*actionSpace : 1*actionSpace : 1*actionSpace]
	s.Masked = slab[1*actionSpace : 2*actionSpace : 2*actionSpace]
	s.Probs = slab[2*actionSpace : 3*actionSpace : 3*actionSpace]
	s.LogProbs = slab[3*actionSpace : 4*actionSpace : 4*actionSpace]
	s.Grad = slab[4*actionSpace : 5*actionSpace : 5*actionSpace]
	return s
}
