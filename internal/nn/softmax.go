package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// NegInf is the logit value used to disable masked actions: exp(-inf) = 0,
// so masked actions receive zero probability (the Apply_Mask of
// Algorithm 2, line 6).
var NegInf = math.Inf(-1)

// MaskLogits returns a copy of logits with masked-out entries (mask[i] ==
// false) set to -inf. The caller keeps the original logits for the PPO
// buffer (Algorithm 2, line 17 stores the unmasked policy).
func MaskLogits(logits []float64, mask []bool) []float64 {
	if len(logits) != len(mask) {
		panic(fmt.Sprintf("nn: %d logits vs %d mask bits", len(logits), len(mask)))
	}
	out := make([]float64, len(logits))
	for i, l := range logits {
		if mask[i] {
			out[i] = l
		} else {
			out[i] = NegInf
		}
	}
	return out
}

// LogSoftmax computes numerically stable log-probabilities. Entries at -inf
// stay -inf. It panics if every entry is -inf.
func LogSoftmax(logits []float64) []float64 {
	maxL := NegInf
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	if math.IsInf(maxL, -1) {
		panic("nn: log-softmax over fully masked logits")
	}
	var sum float64
	for _, l := range logits {
		if !math.IsInf(l, -1) {
			sum += math.Exp(l - maxL)
		}
	}
	logZ := maxL + math.Log(sum)
	out := make([]float64, len(logits))
	for i, l := range logits {
		if math.IsInf(l, -1) {
			out[i] = NegInf
		} else {
			out[i] = l - logZ
		}
	}
	return out
}

// Softmax computes probabilities from logits (masked entries get 0).
func Softmax(logits []float64) []float64 {
	lp := LogSoftmax(logits)
	out := make([]float64, len(lp))
	for i, l := range lp {
		if math.IsInf(l, -1) {
			out[i] = 0
		} else {
			out[i] = math.Exp(l)
		}
	}
	return out
}

// SampleCategorical draws an index from the categorical distribution given
// by probs using rng. Probabilities must sum to ~1; the last positive entry
// absorbs rounding error.
func SampleCategorical(rng *rand.Rand, probs []float64) int {
	r := rng.Float64()
	var cum float64
	last := -1
	for i, p := range probs {
		if p <= 0 {
			continue
		}
		last = i
		cum += p
		if r < cum {
			return i
		}
	}
	if last == -1 {
		panic("nn: sampling from all-zero distribution")
	}
	return last
}

// Argmax returns the index of the largest value (first on ties).
func Argmax(xs []float64) int {
	best, bestV := -1, NegInf
	for i, v := range xs {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Entropy computes the Shannon entropy of a probability vector in nats.
func Entropy(probs []float64) float64 {
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// LogSoftmaxGrad returns the gradient of logProbs[action] with respect to
// the (masked) logits: e_a − softmax(logits). Masked entries get zero
// gradient, so fully disabled actions never receive updates.
//
// action must index a non-masked (finite) logit: log p(action) is -inf
// there, and the e_a term would otherwise leave a +1 gradient on the
// masked entry, pushing probability mass onto a disabled action. That
// only happens when a caller stores an action inconsistent with its mask,
// so it panics loudly instead of corrupting the policy.
func LogSoftmaxGrad(logits []float64, action int) []float64 {
	if math.IsInf(logits[action], -1) {
		panic(fmt.Sprintf("nn: log-softmax gradient of masked action %d (logit is -inf)", action))
	}
	probs := Softmax(logits)
	g := make([]float64, len(logits))
	for i, p := range probs {
		if math.IsInf(logits[i], -1) {
			g[i] = 0
			continue
		}
		g[i] = -p
	}
	g[action]++
	return g
}
