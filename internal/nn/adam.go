package nn

import (
	"fmt"
	"math"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2014) over a parameter
// list, the gradient method used for all updates in the paper (§IV-C).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	step int
	m    []*Matrix
	v    []*Matrix
}

// NewAdam constructs an optimizer with the standard defaults
// (β1=0.9, β2=0.999, ε=1e-8) and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update using the accumulated gradients of ps. The
// parameter list must be the same (same order and shapes) on every call:
// the moment estimates are indexed positionally, so a silently reordered
// or reshaped list would pair each parameter with another parameter's
// momenta and corrupt the update. Step panics with a clear message when
// the list changes shape between calls (the same guard Import applies to
// restored state).
func (a *Adam) Step(ps []Param) {
	if a.m == nil {
		a.m = make([]*Matrix, len(ps))
		a.v = make([]*Matrix, len(ps))
		for i, p := range ps {
			a.m[i] = NewMatrix(p.Value.Rows, p.Value.Cols)
			a.v[i] = NewMatrix(p.Value.Rows, p.Value.Cols)
		}
	} else {
		if len(ps) != len(a.m) {
			panic(fmt.Sprintf("nn: adam stepped with %d params, first call had %d", len(ps), len(a.m)))
		}
		for i, p := range ps {
			if p.Value.Rows != a.m[i].Rows || p.Value.Cols != a.m[i].Cols {
				panic(fmt.Sprintf("nn: adam param %d is %dx%d, first call had %dx%d",
					i, p.Value.Rows, p.Value.Cols, a.m[i].Rows, a.m[i].Cols))
			}
		}
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range ps {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mHat := m.Data[j] / bc1
			vHat := v.Data[j] / bc2
			p.Value.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
		}
	}
}

// Steps returns how many updates have been applied.
func (a *Adam) Steps() int { return a.step }

// AdamState is a serializable snapshot of the optimizer's moment estimates,
// used by training checkpoints: resuming with restored moments reproduces
// the uninterrupted update sequence exactly.
type AdamState struct {
	Step int         `json:"step"`
	M    [][]float64 `json:"m,omitempty"`
	V    [][]float64 `json:"v,omitempty"`
}

// Export deep-copies the optimizer state. An optimizer that has never
// stepped exports an empty state.
func (a *Adam) Export() AdamState {
	st := AdamState{Step: a.step}
	for i := range a.m {
		st.M = append(st.M, append([]float64(nil), a.m[i].Data...))
		st.V = append(st.V, append([]float64(nil), a.v[i].Data...))
	}
	return st
}

// Import restores a snapshot taken with Export. ps must be the parameter
// list the optimizer steps over — it supplies the moment tensor shapes.
func (a *Adam) Import(ps []Param, st AdamState) error {
	if len(st.M) == 0 && len(st.V) == 0 {
		a.step = st.Step
		a.m, a.v = nil, nil
		return nil
	}
	if len(st.M) != len(ps) || len(st.V) != len(ps) {
		return fmt.Errorf("nn: adam state has %d/%d moment tensors, network has %d params",
			len(st.M), len(st.V), len(ps))
	}
	m := make([]*Matrix, len(ps))
	v := make([]*Matrix, len(ps))
	for i, p := range ps {
		if len(st.M[i]) != len(p.Value.Data) || len(st.V[i]) != len(p.Value.Data) {
			return fmt.Errorf("nn: adam moment tensor %d has %d/%d values, param expects %d",
				i, len(st.M[i]), len(st.V[i]), len(p.Value.Data))
		}
		m[i] = FromSlice(p.Value.Rows, p.Value.Cols, append([]float64(nil), st.M[i]...))
		v[i] = FromSlice(p.Value.Rows, p.Value.Cols, append([]float64(nil), st.V[i]...))
	}
	a.step = st.Step
	a.m, a.v = m, v
	return nil
}
