package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba, 2014) over a parameter
// list, the gradient method used for all updates in the paper (§IV-C).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	step int
	m    []*Matrix
	v    []*Matrix
}

// NewAdam constructs an optimizer with the standard defaults
// (β1=0.9, β2=0.999, ε=1e-8) and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update using the accumulated gradients of ps. The
// parameter list must be the same (same order and shapes) on every call.
func (a *Adam) Step(ps []Param) {
	if a.m == nil {
		a.m = make([]*Matrix, len(ps))
		a.v = make([]*Matrix, len(ps))
		for i, p := range ps {
			a.m[i] = NewMatrix(p.Value.Rows, p.Value.Cols)
			a.v[i] = NewMatrix(p.Value.Rows, p.Value.Cols)
		}
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range ps {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mHat := m.Data[j] / bc1
			vHat := v.Data[j] / bc2
			p.Value.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
		}
	}
}

// Steps returns how many updates have been applied.
func (a *Adam) Steps() int { return a.step }
