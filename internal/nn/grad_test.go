package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad computes the central finite-difference gradient of loss()
// with respect to every element of the parameter matrices.
func numericalGrad(ps []Param, loss func() float64) [][]float64 {
	const eps = 1e-6
	grads := make([][]float64, len(ps))
	for i, p := range ps {
		grads[i] = make([]float64, len(p.Value.Data))
		for j := range p.Value.Data {
			orig := p.Value.Data[j]
			p.Value.Data[j] = orig + eps
			up := loss()
			p.Value.Data[j] = orig - eps
			down := loss()
			p.Value.Data[j] = orig
			grads[i][j] = (up - down) / (2 * eps)
		}
	}
	return grads
}

func assertGradsClose(t *testing.T, ps []Param, numeric [][]float64, tol float64) {
	t.Helper()
	for i, p := range ps {
		for j := range p.Grad.Data {
			a, n := p.Grad.Data[j], numeric[i][j]
			scale := math.Max(1, math.Max(math.Abs(a), math.Abs(n)))
			if math.Abs(a-n)/scale > tol {
				t.Fatalf("param %d (%s) elem %d: analytic %v vs numeric %v", i, p.Name, j, a, n)
			}
		}
	}
}

func TestDenseGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layer := NewDense(rng, 4, 3, Tanh)
	x := NewMatrix(2, 4)
	x.XavierInit(rng, 4, 3)
	// Loss: sum of squares of outputs.
	loss := func() float64 {
		y := layer.Forward(x)
		var s float64
		for _, v := range y.Data {
			s += v * v
		}
		return s
	}
	numeric := numericalGrad(layer.Params(), loss)

	ZeroGrads(layer.Params())
	y := layer.Forward(x)
	dY := y.Clone()
	dY.ScaleInPlace(2)
	layer.Backward(dY)
	assertGradsClose(t, layer.Params(), numeric, 1e-5)
}

func TestDenseInputGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	layer := NewDense(rng, 3, 2, ReLU)
	x := FromSlice(1, 3, []float64{0.3, -0.7, 1.2})
	loss := func() float64 {
		y := layer.Forward(x)
		var s float64
		for _, v := range y.Data {
			s += v * v
		}
		return s
	}
	const eps = 1e-6
	numeric := make([]float64, 3)
	for j := range x.Data {
		orig := x.Data[j]
		x.Data[j] = orig + eps
		up := loss()
		x.Data[j] = orig - eps
		down := loss()
		x.Data[j] = orig
		numeric[j] = (up - down) / (2 * eps)
	}
	ZeroGrads(layer.Params())
	y := layer.Forward(x)
	dY := y.Clone()
	dY.ScaleInPlace(2)
	dX := layer.Backward(dY)
	for j := range numeric {
		if math.Abs(dX.Data[j]-numeric[j]) > 1e-5 {
			t.Fatalf("input grad %d: analytic %v vs numeric %v", j, dX.Data[j], numeric[j])
		}
	}
}

func TestMLPGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mlp := NewMLP(rng, 5, []int{8, 8}, 3, Tanh)
	x := NewMatrix(1, 5)
	x.XavierInit(rng, 5, 3)
	loss := func() float64 {
		y := mlp.Forward(x)
		var s float64
		for i, v := range y.Data {
			s += v * float64(i+1) // asymmetric loss
		}
		return s
	}
	numeric := numericalGrad(mlp.Params(), loss)
	ZeroGrads(mlp.Params())
	y := mlp.Forward(x)
	dY := NewMatrix(y.Rows, y.Cols)
	for i := range dY.Data {
		dY.Data[i] = float64(i + 1)
	}
	mlp.Backward(dY)
	assertGradsClose(t, mlp.Params(), numeric, 1e-5)
}

func TestGCNGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	gcn := NewGCN(rng, 2, 4, 6, 2)
	// Random 5-node graph.
	adj := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if rng.Intn(2) == 0 {
				adj.Set(i, j, 1)
				adj.Set(j, i, 1)
			}
		}
	}
	sHat := NormalizeAdjacency(adj)
	h := NewMatrix(5, 4)
	h.XavierInit(rng, 4, 2)
	loss := func() float64 {
		y := gcn.Forward(sHat, h)
		var s float64
		for i, v := range y.Data {
			s += v * v * float64(i%3+1)
		}
		return s
	}
	numeric := numericalGrad(gcn.Params(), loss)
	ZeroGrads(gcn.Params())
	y := gcn.Forward(sHat, h)
	dY := NewMatrix(y.Rows, y.Cols)
	for i, v := range y.Data {
		dY.Data[i] = 2 * v * float64(i%3+1)
	}
	gcn.Backward(dY)
	// ReLU kinks make finite differences slightly noisy; modest tolerance.
	assertGradsClose(t, gcn.Params(), numeric, 1e-4)
}

// TestMLPBatchedForwardMatchesSingleBitForBit is the property the planner's
// batched exploration relies on: because every matmul kernel computes output
// rows independently, forwarding a row-stacked batch produces, per row, the
// exact bits of a single-row forward.
func TestMLPBatchedForwardMatchesSingleBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mlp := NewMLP(rng, 5, []int{8, 8}, 3, Tanh)
	const batch = 4
	xs := NewMatrix(batch, 5)
	xs.XavierInit(rng, 5, 3)

	// Single-row forwards, copied out of the borrowed scratch.
	single := make([][]float64, batch)
	row := NewMatrix(1, 5)
	for i := 0; i < batch; i++ {
		copy(row.Data, xs.Data[i*5:(i+1)*5])
		single[i] = append([]float64(nil), mlp.Forward(row).Data...)
	}

	batched := mlp.Forward(xs)
	for i := 0; i < batch; i++ {
		for j := 0; j < 3; j++ {
			got := batched.At(i, j)
			want := single[i][j]
			if got != want {
				t.Fatalf("row %d col %d: batched %v != single %v (must be bit-identical)", i, j, got, want)
			}
		}
	}
}

// TestMLPBatchedBackwardMatchesFiniteDifference checks the in-place
// backward pass on a multi-row (batched) input against finite differences.
func TestMLPBatchedBackwardMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	mlp := NewMLP(rng, 4, []int{6}, 2, ReLU)
	x := NewMatrix(3, 4)
	x.XavierInit(rng, 4, 2)
	loss := func() float64 {
		y := mlp.Forward(x)
		var s float64
		for i, v := range y.Data {
			s += v * v * float64(i%2+1)
		}
		return s
	}
	numeric := numericalGrad(mlp.Params(), loss)
	ZeroGrads(mlp.Params())
	y := mlp.Forward(x)
	dY := NewMatrix(y.Rows, y.Cols)
	for i, v := range y.Data {
		dY.Data[i] = 2 * v * float64(i%2+1)
	}
	mlp.Backward(dY)
	assertGradsClose(t, mlp.Params(), numeric, 1e-4)
}

// TestScratchReuseIsBitStable verifies that the layer-owned scratch does not
// leak state between calls: repeating the same forward/backward produces
// exactly the same outputs and gradient accumulations.
func TestScratchReuseIsBitStable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	gcn := NewGCN(rng, 2, 4, 6, 2)
	adj := NewMatrix(5, 5)
	for i := 0; i < 4; i++ {
		adj.Set(i, i+1, 1)
		adj.Set(i+1, i, 1)
	}
	sHat := NormalizeAdjacency(adj)
	h := NewMatrix(5, 4)
	h.XavierInit(rng, 4, 2)
	dY := NewMatrix(5, 2)
	for i := range dY.Data {
		dY.Data[i] = rng.NormFloat64()
	}

	snap := func() ([]float64, [][]float64) {
		ZeroGrads(gcn.Params())
		y := append([]float64(nil), gcn.Forward(sHat, h).Data...)
		gcn.Backward(dY)
		var gs [][]float64
		for _, p := range gcn.Params() {
			gs = append(gs, append([]float64(nil), p.Grad.Data...))
		}
		return y, gs
	}
	y1, g1 := snap()
	y2, g2 := snap()
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("output %d changed across identical calls: %v vs %v", i, y1[i], y2[i])
		}
	}
	for i := range g1 {
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatalf("grad %d/%d changed across identical calls: %v vs %v", i, j, g1[i][j], g2[i][j])
			}
		}
	}
}

func TestGCNZeroLayersIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gcn := NewGCN(rng, 0, 4, 6, 2)
	if gcn.NumLayers() != 0 {
		t.Fatal("expected 0 layers")
	}
	if gcn.OutFeatures(4) != 4 {
		t.Fatal("identity GCN must preserve feature dim")
	}
	h := FromSlice(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	sHat := NormalizeAdjacency(NewMatrix(2, 2))
	y := gcn.Forward(sHat, h)
	for i := range h.Data {
		if y.Data[i] != h.Data[i] {
			t.Fatal("identity GCN changed features")
		}
	}
	dy := y.Clone()
	dx := gcn.Backward(dy)
	for i := range dy.Data {
		if dx.Data[i] != dy.Data[i] {
			t.Fatal("identity GCN changed gradient")
		}
	}
	if gcn.Params() != nil {
		t.Fatal("identity GCN has no params")
	}
}

func TestNormalizeAdjacency(t *testing.T) {
	// Two connected nodes: A+I = [[1,1],[1,1]], D = diag(2,2),
	// Ŝ = all entries 1/2.
	adj := FromSlice(2, 2, []float64{0, 1, 1, 0})
	s := NormalizeAdjacency(adj)
	for _, v := range s.Data {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("Ŝ = %v, want all 0.5", s.Data)
		}
	}
	// Isolated node: self loop only, Ŝ = 1.
	s = NormalizeAdjacency(NewMatrix(1, 1))
	if s.Data[0] != 1 {
		t.Fatalf("isolated Ŝ = %v, want 1", s.Data[0])
	}
	// Symmetry on a random graph.
	rng := rand.New(rand.NewSource(3))
	adj = NewMatrix(6, 6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if rng.Intn(2) == 0 {
				adj.Set(i, j, 1)
				adj.Set(j, i, 1)
			}
		}
	}
	s = NormalizeAdjacency(adj)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if math.Abs(s.At(i, j)-s.At(j, i)) > 1e-12 {
				t.Fatal("Ŝ not symmetric")
			}
		}
	}
}
