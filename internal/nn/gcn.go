package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// NormalizeAdjacency computes Ŝ = D^{-1/2}(A + I)D^{-1/2}, the symmetric
// renormalized propagation operator of Eq. 4 (Kipf & Welling), where D is
// the degree matrix of the self-connected adjacency A + I.
func NormalizeAdjacency(adj *Matrix) *Matrix {
	if adj.Rows != adj.Cols {
		panic(fmt.Sprintf("nn: adjacency must be square, got %dx%d", adj.Rows, adj.Cols))
	}
	n := adj.Rows
	s := adj.Clone()
	for i := 0; i < n; i++ {
		s.Data[i*n+i]++ // A + I
	}
	dInvSqrt := make([]float64, n)
	for i := 0; i < n; i++ {
		var deg float64
		for j := 0; j < n; j++ {
			deg += s.Data[i*n+j]
		}
		dInvSqrt[i] = 1 / math.Sqrt(deg) // deg >= 1 thanks to self loop
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Data[i*n+j] *= dInvSqrt[i] * dInvSqrt[j]
		}
	}
	return s
}

// GCNLayer implements one layer of Eq. 4: H' = σ(Ŝ H W). The propagation
// operator Ŝ varies per observation (the topology changes every step), so
// it is an input to Forward rather than a layer parameter.
//
// All intermediates live in layer-owned scratch matrices resized in place,
// so steady-state Forward/Backward allocate nothing. Returned matrices are
// valid until the layer's next Forward/Backward call.
type GCNLayer struct {
	In, Out int
	Act     Activation

	W     *Matrix
	gradW *Matrix

	lastS *Matrix // Ŝ (caller-owned)
	sh    *Matrix // Ŝ H scratch
	z     *Matrix // pre-activation scratch
	y     *Matrix // post-activation scratch

	dZ       *Matrix // backward scratch
	dZW      *Matrix // backward scratch: dZ Wᵀ
	dH       *Matrix // backward scratch: returned input gradient
	gradWTmp *Matrix // backward scratch: (ŜH)ᵀ dZ before accumulation
}

// NewGCNLayer builds a GCN layer with Xavier-initialized weights.
func NewGCNLayer(rng *rand.Rand, in, out int, act Activation) *GCNLayer {
	l := &GCNLayer{
		In: in, Out: out, Act: act,
		W: NewMatrix(in, out), gradW: NewMatrix(in, out),
		sh: new(Matrix), z: new(Matrix), y: new(Matrix),
		dZ: new(Matrix), dZW: new(Matrix), dH: new(Matrix), gradWTmp: new(Matrix),
	}
	l.W.XavierInit(rng, in, out)
	return l
}

// Forward computes σ(Ŝ H W) and caches intermediates for Backward. The
// returned matrix is layer-owned scratch.
func (l *GCNLayer) Forward(sHat, h *Matrix) *Matrix {
	if h.Cols != l.In {
		panic(fmt.Sprintf("nn: gcn input features %d, want %d", h.Cols, l.In))
	}
	MatMulInto(l.sh, sHat, h)
	MatMulInto(l.z, l.sh, l.W)
	l.lastS = sHat
	l.Act.applyInto(l.y, l.z)
	return l.y
}

// Backward accumulates dW and returns dH, the gradient with respect to the
// input node features. Ŝ is symmetric, so dH = Ŝ (dZ Wᵀ).
func (l *GCNLayer) Backward(dY *Matrix) *Matrix {
	if l.lastS == nil {
		panic("nn: gcn backward before forward")
	}
	l.Act.backwardInto(l.dZ, dY, l.z, l.y)
	matMulATInto(l.gradWTmp, l.sh, l.dZ)
	l.gradW.AddInPlace(l.gradWTmp)
	matMulBTInto(l.dZW, l.dZ, l.W)
	MatMulInto(l.dH, l.lastS, l.dZW)
	return l.dH
}

// Params exposes the layer weight to the optimizer.
func (l *GCNLayer) Params() []Param {
	return []Param{{Value: l.W, Grad: l.gradW, Name: "gcn.W"}}
}

// GCN is a stack of GCN layers over a per-observation propagation operator.
// A zero-layer GCN is the identity on the node features (the GCN-0 setup of
// the sensitivity test, Fig. 5a).
type GCN struct {
	layers []*GCNLayer
}

// NewGCN builds `numLayers` GCN layers mapping the input feature dimension
// to embedDim node features, with hiddenDim features in between. ReLU is
// used on hidden layers and on the final layer, matching the standard
// Kipf-Welling construction.
func NewGCN(rng *rand.Rand, numLayers, inFeatures, hiddenDim, embedDim int) *GCN {
	g := &GCN{}
	if numLayers <= 0 {
		return g
	}
	prev := inFeatures
	for i := 0; i < numLayers; i++ {
		out := hiddenDim
		if i == numLayers-1 {
			out = embedDim
		}
		g.layers = append(g.layers, NewGCNLayer(rng, prev, out, ReLU))
		prev = out
	}
	return g
}

// NumLayers returns the number of GCN layers.
func (g *GCN) NumLayers() int { return len(g.layers) }

// OutFeatures returns the per-node output feature dimension for the given
// input feature dimension (identity when the GCN has no layers).
func (g *GCN) OutFeatures(inFeatures int) int {
	if len(g.layers) == 0 {
		return inFeatures
	}
	return g.layers[len(g.layers)-1].Out
}

// Forward runs all layers over the propagation operator sHat. The returned
// matrix is scratch owned by the last layer (or the input itself for a
// zero-layer GCN).
func (g *GCN) Forward(sHat, h *Matrix) *Matrix {
	for _, l := range g.layers {
		h = l.Forward(sHat, h)
	}
	return h
}

// Backward backpropagates through all layers and returns the gradient with
// respect to the input features.
func (g *GCN) Backward(dY *Matrix) *Matrix {
	for i := len(g.layers) - 1; i >= 0; i-- {
		dY = g.layers[i].Backward(dY)
	}
	return dY
}

// Params lists all layer weights.
func (g *GCN) Params() []Param {
	var ps []Param
	for _, l := range g.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
