package nn

import (
	"math"
	"math/rand"
	"testing"
)

func gatFixture(t testing.TB) (*GAT, *Matrix, *Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	gat := NewGAT(rng, 2, 4, 6, 2)
	adj := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if rng.Intn(2) == 0 {
				adj.Set(i, j, 1)
				adj.Set(j, i, 1)
			}
		}
	}
	mask := SelfLoopMask(adj)
	h := NewMatrix(5, 4)
	h.XavierInit(rng, 4, 2)
	return gat, mask, h
}

func TestSelfLoopMask(t *testing.T) {
	adj := FromSlice(2, 2, []float64{0, 1, 1, 0})
	m := SelfLoopMask(adj)
	want := []float64{1, 1, 1, 1}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("mask = %v, want %v", m.Data, want)
		}
	}
	iso := SelfLoopMask(NewMatrix(1, 1))
	if iso.Data[0] != 1 {
		t.Fatal("isolated node must attend to itself")
	}
}

func TestGATForwardShapesAndAttentionRows(t *testing.T) {
	gat, mask, h := gatFixture(t)
	y := gat.Forward(mask, h)
	if y.Rows != 5 || y.Cols != 2 {
		t.Fatalf("output %dx%d, want 5x2", y.Rows, y.Cols)
	}
	// Each layer's attention rows must sum to 1 over the mask.
	for _, layer := range gat.layers {
		for i := 0; i < 5; i++ {
			var sum float64
			for j := 0; j < 5; j++ {
				a := layer.alpha.At(i, j)
				if mask.At(i, j) == 0 && a != 0 {
					t.Fatalf("attention leaked outside the mask at (%d,%d)", i, j)
				}
				if a < 0 {
					t.Fatalf("negative attention at (%d,%d)", i, j)
				}
				sum += a
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("attention row %d sums to %v", i, sum)
			}
		}
	}
}

func TestGATGradientMatchesFiniteDifference(t *testing.T) {
	gat, mask, h := gatFixture(t)
	loss := func() float64 {
		y := gat.Forward(mask, h)
		var s float64
		for i, v := range y.Data {
			s += v * v * float64(i%3+1)
		}
		return s
	}
	numeric := numericalGrad(gat.Params(), loss)
	ZeroGrads(gat.Params())
	y := gat.Forward(mask, h)
	dY := NewMatrix(y.Rows, y.Cols)
	for i, v := range y.Data {
		dY.Data[i] = 2 * v * float64(i%3+1)
	}
	gat.Backward(dY)
	// ReLU/LeakyReLU kinks: modest tolerance.
	assertGradsClose(t, gat.Params(), numeric, 1e-4)
}

func TestGATInputGradientMatchesFiniteDifference(t *testing.T) {
	gat, mask, h := gatFixture(t)
	loss := func() float64 {
		y := gat.Forward(mask, h)
		var s float64
		for i, v := range y.Data {
			s += v * float64(i+1)
		}
		return s
	}
	ZeroGrads(gat.Params())
	y := gat.Forward(mask, h)
	dY := NewMatrix(y.Rows, y.Cols)
	for i := range dY.Data {
		dY.Data[i] = float64(i + 1)
	}
	dH := gat.Backward(dY)
	const eps = 1e-6
	for j := range h.Data {
		orig := h.Data[j]
		h.Data[j] = orig + eps
		up := loss()
		h.Data[j] = orig - eps
		down := loss()
		h.Data[j] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(dH.Data[j]-numeric) > 1e-4*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("dH[%d] = %v, numeric %v", j, dH.Data[j], numeric)
		}
	}
}

func TestGATZeroLayersIdentity(t *testing.T) {
	gat := NewGAT(rand.New(rand.NewSource(1)), 0, 3, 4, 2)
	if gat.NumLayers() != 0 || gat.OutFeatures(3) != 3 {
		t.Fatal("zero-layer GAT should be identity-shaped")
	}
	h := FromSlice(1, 3, []float64{1, 2, 3})
	y := gat.Forward(SelfLoopMask(NewMatrix(1, 1)), h)
	for i := range h.Data {
		if y.Data[i] != h.Data[i] {
			t.Fatal("identity violated")
		}
	}
	if gat.Params() != nil {
		t.Fatal("identity GAT has no params")
	}
}

func TestGATDeterministic(t *testing.T) {
	gat, mask, h := gatFixture(t)
	y1 := gat.Forward(mask, h).Clone()
	y2 := gat.Forward(mask, h)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("GAT forward not deterministic")
		}
	}
}
