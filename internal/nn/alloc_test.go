package nn

import (
	"math/rand"
	"testing"

	"repro/internal/raceflag"
)

// assertAllocFree runs f under testing.AllocsPerRun and fails when the
// steady-state allocation count is non-zero. The race runtime instruments
// allocations, so the guards skip themselves under -race.
func assertAllocFree(t *testing.T, name string, f func()) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	f() // warm layer-owned scratch before counting
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s: %v allocs/op in steady state, want 0", name, n)
	}
}

// TestGCNForwardBackwardAllocFree guards the trunk hot path: after the
// first call sized the scratch buffers, Forward+Backward must not allocate.
func TestGCNForwardBackwardAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGCN(rng, 2, 3, 8, 2)
	n := 5
	adj := NewMatrix(n, n)
	for i := 0; i < n-1; i++ {
		adj.Set(i, i+1, 1)
		adj.Set(i+1, i, 1)
	}
	sHat := NormalizeAdjacency(adj)
	h := NewMatrix(n, 3)
	for i := range h.Data {
		h.Data[i] = rng.NormFloat64()
	}
	dY := NewMatrix(n, 2)
	for i := range dY.Data {
		dY.Data[i] = rng.NormFloat64()
	}
	assertAllocFree(t, "gcn forward+backward", func() {
		g.Forward(sHat, h)
		g.Backward(dY)
	})
}

// TestMLPForwardBackwardAllocFree guards the dense head hot path.
func TestMLPForwardBackwardAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 6, []int{16, 16}, 4, Tanh)
	x := NewMatrix(1, 6)
	dY := NewMatrix(1, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range dY.Data {
		dY.Data[i] = rng.NormFloat64()
	}
	assertAllocFree(t, "mlp forward+backward", func() {
		m.Forward(x)
		m.Backward(dY)
	})
}

// TestMaskedSoftmaxAllocFree guards the per-step sampling helpers: with a
// Scratch arena, masking, softmax, log-softmax and the policy-gradient
// helper allocate nothing.
func TestMaskedSoftmaxAllocFree(t *testing.T) {
	logits := []float64{0.3, -1.2, 2.5, 0.0, -0.4}
	mask := []bool{true, false, true, true, false}
	sc := NewScratch(len(logits))
	assertAllocFree(t, "masked softmax chain", func() {
		masked := MaskLogitsInto(sc.Masked, logits, mask)
		SoftmaxInto(sc.Probs, masked)
		LogSoftmaxInto(sc.LogProbs, masked)
		LogSoftmaxGradInto(sc.Grad, masked, 2)
	})
}
