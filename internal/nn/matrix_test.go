package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 5 || m.At(1, 2) != -2 || m.At(0, 0) != 0 {
		t.Fatal("At/Set wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone shares storage")
	}
	m.Zero()
	if m.At(0, 1) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape %dx%d", at.Rows, at.Cols)
	}
	if at.At(0, 1) != 4 || at.At(2, 0) != 3 {
		t.Fatalf("Transpose wrong: %v", at.Data)
	}
}

func TestHadamardAndAddScale(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	h := Hadamard(a, b)
	if h.Data[0] != 4 || h.Data[2] != 18 {
		t.Fatalf("Hadamard = %v", h.Data)
	}
	a.AddInPlace(b)
	if a.Data[1] != 7 {
		t.Fatalf("AddInPlace = %v", a.Data)
	}
	a.ScaleInPlace(2)
	if a.Data[0] != 10 {
		t.Fatalf("ScaleInPlace = %v", a.Data)
	}
}

func TestFlattenReshapeConcat(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	f := a.Flatten()
	if f.Rows != 1 || f.Cols != 4 || f.Data[3] != 4 {
		t.Fatalf("Flatten = %+v", f)
	}
	r := f.Reshape(2, 2)
	if r.At(1, 0) != 3 {
		t.Fatalf("Reshape wrong")
	}
	c := ConcatCols(FromSlice(1, 2, []float64{1, 2}), FromSlice(1, 3, []float64{3, 4, 5}))
	if c.Cols != 5 || c.Data[4] != 5 {
		t.Fatalf("ConcatCols = %+v", c)
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(50, 50)
	m.XavierInit(rng, 50, 50)
	limit := math.Sqrt(6.0 / 100.0)
	var nonzero int
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("value %v outside Xavier limit %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 2000 {
		t.Fatal("init looks degenerate")
	}
}

func TestParamHelpers(t *testing.T) {
	mk := func() []Param {
		return []Param{
			{Value: FromSlice(1, 2, []float64{1, 2}), Grad: FromSlice(1, 2, []float64{3, 4})},
		}
	}
	ps := mk()
	ZeroGrads(ps)
	if ps[0].Grad.Data[0] != 0 {
		t.Fatal("ZeroGrads failed")
	}
	ps = mk()
	ScaleGrads(ps, 0.5)
	if ps[0].Grad.Data[1] != 2 {
		t.Fatal("ScaleGrads failed")
	}
	dst, src := mk(), mk()
	AddGrads(dst, src)
	if dst[0].Grad.Data[0] != 6 {
		t.Fatal("AddGrads failed")
	}
	CopyParams(dst, []Param{{Value: FromSlice(1, 2, []float64{9, 9}), Grad: NewMatrix(1, 2)}})
	if dst[0].Value.Data[0] != 9 {
		t.Fatal("CopyParams failed")
	}
	if n := GlobalGradNorm(mk()); math.Abs(n-5) > 1e-12 {
		t.Fatalf("GlobalGradNorm = %v, want 5", n)
	}
	ps = mk()
	ClipGrads(ps, 1)
	if n := GlobalGradNorm(ps); math.Abs(n-1) > 1e-12 {
		t.Fatalf("clipped norm = %v, want 1", n)
	}
	ps = mk()
	ClipGrads(ps, 100) // below threshold: unchanged
	if ps[0].Grad.Data[0] != 3 {
		t.Fatal("ClipGrads should not scale below the threshold")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||^2 with Adam.
	w := FromSlice(1, 3, []float64{5, -3, 2})
	g := NewMatrix(1, 3)
	target := []float64{1, 2, 3}
	ps := []Param{{Value: w, Grad: g}}
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		ZeroGrads(ps)
		for j := range target {
			g.Data[j] = 2 * (w.Data[j] - target[j])
		}
		opt.Step(ps)
	}
	for j := range target {
		if math.Abs(w.Data[j]-target[j]) > 1e-3 {
			t.Fatalf("Adam did not converge: w=%v", w.Data)
		}
	}
	if opt.Steps() != 500 {
		t.Fatalf("Steps = %d", opt.Steps())
	}
}
