package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// gatLeakySlope is the LeakyReLU slope of the attention scores (the value
// used by Veličković et al.).
const gatLeakySlope = 0.2

// SelfLoopMask returns the 0/1 attention mask A + I: each node attends to
// its neighbors and itself, the masked self-attention of GAT.
func SelfLoopMask(adj *Matrix) *Matrix {
	if adj.Rows != adj.Cols {
		panic(fmt.Sprintf("nn: adjacency must be square, got %dx%d", adj.Rows, adj.Cols))
	}
	m := NewMatrix(adj.Rows, adj.Cols)
	for i := 0; i < adj.Rows; i++ {
		for j := 0; j < adj.Cols; j++ {
			if adj.At(i, j) != 0 {
				m.Set(i, j, 1)
			}
		}
		m.Set(i, i, 1)
	}
	return m
}

// GATLayer is a single-head Graph Attention layer (Veličković et al.): the
// §IV-C alternative to GCN. Attention coefficients are computed per edge
// with a LeakyReLU-activated additive score and normalized by a masked
// softmax over each node's neighborhood.
//
// Like GCNLayer, all intermediates live in layer-owned scratch buffers
// resized in place; returned matrices are valid until the next call.
type GATLayer struct {
	In, Out int
	Act     Activation

	W  *Matrix // In×Out
	A1 *Matrix // Out×1: attention weights for the source node
	A2 *Matrix // Out×1: attention weights for the neighbor node

	gradW  *Matrix
	gradA1 *Matrix
	gradA2 *Matrix

	// caches (lastMask/lastH are caller-owned inputs; the rest is scratch)
	lastMask *Matrix
	lastH    *Matrix
	z        *Matrix
	raw      *Matrix // unactivated attention scores (only valid on mask)
	alpha    *Matrix
	s        *Matrix // pre-activation aggregate
	y        *Matrix

	src, dst []float64 // per-node attention score scratch

	dS        *Matrix // backward scratch
	dZ        *Matrix
	dH        *Matrix
	gradWTmp  *Matrix
	dSrc      []float64
	dDst      []float64
	dAlphaRow []float64
}

// NewGATLayer builds a layer with Xavier-initialized parameters.
func NewGATLayer(rng *rand.Rand, in, out int, act Activation) *GATLayer {
	l := &GATLayer{
		In: in, Out: out, Act: act,
		W: NewMatrix(in, out), A1: NewMatrix(out, 1), A2: NewMatrix(out, 1),
		gradW: NewMatrix(in, out), gradA1: NewMatrix(out, 1), gradA2: NewMatrix(out, 1),
		z: new(Matrix), raw: new(Matrix), alpha: new(Matrix), s: new(Matrix), y: new(Matrix),
		dS: new(Matrix), dZ: new(Matrix), dH: new(Matrix), gradWTmp: new(Matrix),
	}
	l.W.XavierInit(rng, in, out)
	l.A1.XavierInit(rng, out, 1)
	l.A2.XavierInit(rng, out, 1)
	return l
}

// ensureVec grows a float64 scratch slice to length n, reusing capacity.
func ensureVec(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Forward computes the attention aggregation over the self-looped mask. The
// returned matrix is layer-owned scratch.
func (l *GATLayer) Forward(mask, h *Matrix) *Matrix {
	if h.Cols != l.In {
		panic(fmt.Sprintf("nn: gat input features %d, want %d", h.Cols, l.In))
	}
	n := h.Rows
	MatMulInto(l.z, h, l.W)
	z := l.z

	// Per-node source/neighbor scores.
	l.src = ensureVec(l.src, n)
	l.dst = ensureVec(l.dst, n)
	for i := 0; i < n; i++ {
		var s1, s2 float64
		for c := 0; c < l.Out; c++ {
			s1 += z.At(i, c) * l.A1.Data[c]
			s2 += z.At(i, c) * l.A2.Data[c]
		}
		l.src[i] = s1
		l.dst[i] = s2
	}

	l.raw.EnsureShape(n, n)
	l.raw.Zero()
	l.alpha.EnsureShape(n, n)
	l.alpha.Zero()
	raw, alpha := l.raw, l.alpha
	for i := 0; i < n; i++ {
		maxPre := math.Inf(-1)
		for j := 0; j < n; j++ {
			if mask.At(i, j) == 0 {
				continue
			}
			r := l.src[i] + l.dst[j]
			raw.Set(i, j, r)
			pre := leaky(r)
			if pre > maxPre {
				maxPre = pre
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			if mask.At(i, j) == 0 {
				continue
			}
			e := math.Exp(leaky(raw.At(i, j)) - maxPre)
			alpha.Set(i, j, e)
			sum += e
		}
		for j := 0; j < n; j++ {
			if mask.At(i, j) == 0 {
				continue
			}
			alpha.Set(i, j, alpha.At(i, j)/sum)
		}
	}

	MatMulInto(l.s, alpha, z)
	l.lastMask, l.lastH = mask, h
	l.Act.applyInto(l.y, l.s)
	return l.y
}

func leaky(x float64) float64 {
	if x > 0 {
		return x
	}
	return gatLeakySlope * x
}

func leakyGrad(x float64) float64 {
	if x > 0 {
		return 1
	}
	return gatLeakySlope
}

// Backward accumulates parameter gradients and returns dH.
func (l *GATLayer) Backward(dY *Matrix) *Matrix {
	if l.lastH == nil {
		panic("nn: gat backward before forward")
	}
	n := l.lastH.Rows
	l.Act.backwardInto(l.dS, dY, l.s, l.y)
	dS := l.dS

	// dZ from the aggregation: dZ = αᵀ dS.
	matMulATInto(l.dZ, l.alpha, dS)
	dZ := l.dZ

	// dα_ij = dS_i · Z_j for edges; then masked softmax backward per row.
	l.dSrc = ensureVec(l.dSrc, n)
	l.dDst = ensureVec(l.dDst, n)
	l.dAlphaRow = ensureVec(l.dAlphaRow, n)
	dSrc, dDst := l.dSrc, l.dDst
	for i := range dSrc {
		dSrc[i] = 0
		dDst[i] = 0
	}
	for i := 0; i < n; i++ {
		// Row dot products.
		var rowDot float64 // Σ_k α_ik dα_ik
		dAlphaRow := l.dAlphaRow
		for j := range dAlphaRow {
			dAlphaRow[j] = 0
		}
		for j := 0; j < n; j++ {
			if l.lastMask.At(i, j) == 0 {
				continue
			}
			var dot float64
			for c := 0; c < l.Out; c++ {
				dot += dS.At(i, c) * l.z.At(j, c)
			}
			dAlphaRow[j] = dot
			rowDot += l.alpha.At(i, j) * dot
		}
		for j := 0; j < n; j++ {
			if l.lastMask.At(i, j) == 0 {
				continue
			}
			dPre := l.alpha.At(i, j) * (dAlphaRow[j] - rowDot)
			dRaw := dPre * leakyGrad(l.raw.At(i, j))
			dSrc[i] += dRaw
			dDst[j] += dRaw
		}
	}
	// Attention-vector gradients and their Z contributions.
	for i := 0; i < n; i++ {
		for c := 0; c < l.Out; c++ {
			l.gradA1.Data[c] += dSrc[i] * l.z.At(i, c)
			l.gradA2.Data[c] += dDst[i] * l.z.At(i, c)
			dZ.Data[i*l.Out+c] += dSrc[i]*l.A1.Data[c] + dDst[i]*l.A2.Data[c]
		}
	}

	matMulATInto(l.gradWTmp, l.lastH, dZ)
	l.gradW.AddInPlace(l.gradWTmp)
	matMulBTInto(l.dH, dZ, l.W)
	return l.dH
}

// Params exposes the layer parameters.
func (l *GATLayer) Params() []Param {
	return []Param{
		{Value: l.W, Grad: l.gradW, Name: "gat.W"},
		{Value: l.A1, Grad: l.gradA1, Name: "gat.A1"},
		{Value: l.A2, Grad: l.gradA2, Name: "gat.A2"},
	}
}

// GAT is a stack of GAT layers, interface-compatible with GCN: Forward
// takes the self-looped attention mask instead of the normalized
// propagation operator.
type GAT struct {
	layers []*GATLayer
}

// NewGAT builds numLayers GAT layers mapping inFeatures to embedDim with
// hiddenDim in between, mirroring NewGCN.
func NewGAT(rng *rand.Rand, numLayers, inFeatures, hiddenDim, embedDim int) *GAT {
	g := &GAT{}
	if numLayers <= 0 {
		return g
	}
	prev := inFeatures
	for i := 0; i < numLayers; i++ {
		out := hiddenDim
		if i == numLayers-1 {
			out = embedDim
		}
		g.layers = append(g.layers, NewGATLayer(rng, prev, out, ReLU))
		prev = out
	}
	return g
}

// NumLayers returns the number of layers.
func (g *GAT) NumLayers() int { return len(g.layers) }

// OutFeatures mirrors GCN.OutFeatures.
func (g *GAT) OutFeatures(inFeatures int) int {
	if len(g.layers) == 0 {
		return inFeatures
	}
	return g.layers[len(g.layers)-1].Out
}

// Forward runs all layers over the shared attention mask.
func (g *GAT) Forward(mask, h *Matrix) *Matrix {
	for _, l := range g.layers {
		h = l.Forward(mask, h)
	}
	return h
}

// Backward backpropagates through all layers.
func (g *GAT) Backward(dY *Matrix) *Matrix {
	for i := len(g.layers) - 1; i >= 0; i-- {
		dY = g.layers[i].Backward(dY)
	}
	return dY
}

// Params lists all parameters.
func (g *GAT) Params() []Param {
	var ps []Param
	for _, l := range g.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
