// Package nn is a small, dependency-free neural-network library built for
// NPTSN: dense layers, graph convolutional layers (Eq. 4 of the paper),
// ReLU/Tanh activations, masked softmax policies and the Adam optimizer,
// all with explicit (manual) backpropagation. It substitutes for the
// PyTorch stack used by the original implementation; gradients are
// verified against finite differences in the tests.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major) in a matrix; the slice is used directly.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("nn: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to zero in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// shapeEqual panics unless a and b have identical shapes.
func shapeEqual(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// AddInPlace adds b element-wise into m.
func (m *Matrix) AddInPlace(b *Matrix) {
	shapeEqual("add", m, b)
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
}

// ScaleInPlace multiplies all elements by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// EnsureShape resizes m to rows×cols, reusing the existing backing array
// when it has enough capacity. Element values are unspecified afterwards —
// callers that need zeros must Zero() (the Into kernels do it themselves).
func (m *Matrix) EnsureShape(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
}

// aliases reports whether two matrices share a backing array (same slice
// origin is enough for the scratch-reuse discipline: buffers are either
// identical or disjoint, never overlapping views).
func aliases(a, b *Matrix) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

// MatMul returns a×b.
func MatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a×b, resizing dst in place. dst must not alias
// a or b. The inner loop skips zero elements of a (the propagation operator
// Ŝ and the masked feature blocks are sparse); every matmul in the package
// funnels through this kernel so single-row and batched evaluations execute
// the identical floating-point operation sequence per output row.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmul inner dims %d vs %d", a.Cols, b.Rows))
	}
	if aliases(dst, a) || aliases(dst, b) {
		panic("nn: matmul destination aliases an operand")
	}
	dst.EnsureShape(a.Rows, b.Cols)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := dst.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulATInto computes dst = aᵀ×b without materializing the transpose.
// The loop visits exactly the elements MatMulInto(dst, a.Transpose(), b)
// would, in the same order, so results are bit-identical to the allocating
// form the layers used before the scratch rewrite.
func matMulATInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: matmul(aT,b) inner dims %d vs %d", a.Rows, b.Rows))
	}
	if aliases(dst, a) || aliases(dst, b) {
		panic("nn: matmul destination aliases an operand")
	}
	dst.EnsureShape(a.Cols, b.Cols)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Cols; i++ {
		orow := dst.Data[i*b.Cols : (i+1)*b.Cols]
		for k := 0; k < a.Rows; k++ {
			av := a.Data[k*a.Cols+i]
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulBTInto computes dst = a×bᵀ without materializing the transpose,
// bit-identical to MatMulInto(dst, a, b.Transpose()).
func matMulBTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmul(a,bT) inner dims %d vs %d", a.Cols, b.Cols))
	}
	if aliases(dst, a) || aliases(dst, b) {
		panic("nn: matmul destination aliases an operand")
	}
	dst.EnsureShape(a.Rows, b.Rows)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := dst.Data[i*b.Rows : (i+1)*b.Rows]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			for j := 0; j < b.Rows; j++ {
				orow[j] += av * b.Data[j*b.Cols+k]
			}
		}
	}
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Hadamard returns the element-wise product a⊙b.
func Hadamard(a, b *Matrix) *Matrix {
	shapeEqual("hadamard", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Flatten returns the matrix reshaped into a single row vector (a view
// copy, not aliased).
func (m *Matrix) Flatten() *Matrix {
	out := NewMatrix(1, m.Rows*m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Reshape returns a copy with the new shape; the element count must match.
func (m *Matrix) Reshape(rows, cols int) *Matrix {
	if rows*cols != len(m.Data) {
		panic(fmt.Sprintf("nn: cannot reshape %dx%d to %dx%d", m.Rows, m.Cols, rows, cols))
	}
	out := NewMatrix(rows, cols)
	copy(out.Data, m.Data)
	return out
}

// ConcatCols horizontally concatenates row vectors or equal-row matrices.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return NewMatrix(0, 0)
	}
	rows := ms[0].Rows
	total := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("nn: concat rows %d vs %d", m.Rows, rows))
		}
		total += m.Cols
	}
	out := NewMatrix(rows, total)
	for r := 0; r < rows; r++ {
		off := 0
		for _, m := range ms {
			copy(out.Data[r*total+off:r*total+off+m.Cols], m.Data[r*m.Cols:(r+1)*m.Cols])
			off += m.Cols
		}
	}
	return out
}

// XavierInit fills m with Glorot-uniform values for a layer with the given
// fan-in and fan-out, using the provided RNG for determinism.
func (m *Matrix) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// Norm returns the Frobenius norm.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Param couples a parameter matrix with its gradient accumulator; the Adam
// optimizer walks a []Param.
type Param struct {
	Value *Matrix
	Grad  *Matrix
	Name  string
}

// ZeroGrads clears the gradients of all params.
func ZeroGrads(ps []Param) {
	for _, p := range ps {
		p.Grad.Zero()
	}
}

// ScaleGrads multiplies all gradients by s (used for minibatch averaging
// and multi-worker gradient averaging).
func ScaleGrads(ps []Param, s float64) {
	for _, p := range ps {
		p.Grad.ScaleInPlace(s)
	}
}

// AddGrads accumulates src gradients into dst (parameter lists must come
// from identically shaped networks). It implements the distributed gradient
// sum of the parallel training scheme (§IV-C).
func AddGrads(dst, src []Param) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: grad list length %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i].Grad.AddInPlace(src[i].Grad)
	}
}

// CopyParams copies parameter values from src into dst, synchronizing
// worker replicas after a global update.
func CopyParams(dst, src []Param) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: param list length %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		shapeEqual("copy", dst[i].Value, src[i].Value)
		copy(dst[i].Value.Data, src[i].Value.Data)
	}
}

// GlobalGradNorm returns the L2 norm across all gradients.
func GlobalGradNorm(ps []Param) float64 {
	var s float64
	for _, p := range ps {
		for _, v := range p.Grad.Data {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// ClipGrads rescales gradients so their global norm is at most maxNorm.
func ClipGrads(ps []Param, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	n := GlobalGradNorm(ps)
	if n > maxNorm {
		ScaleGrads(ps, maxNorm/n)
	}
}

// ExportWeights snapshots parameter values into plain float64 slices (one
// per parameter, row-major), suitable for JSON persistence.
func ExportWeights(ps []Param) [][]float64 {
	out := make([][]float64, len(ps))
	for i, p := range ps {
		out[i] = append([]float64(nil), p.Value.Data...)
	}
	return out
}

// ImportWeights restores parameter values from an ExportWeights snapshot.
// The snapshot must come from an identically shaped network.
func ImportWeights(ps []Param, data [][]float64) error {
	if len(ps) != len(data) {
		return fmt.Errorf("nn: weight snapshot has %d tensors, network has %d", len(data), len(ps))
	}
	for i, p := range ps {
		if len(p.Value.Data) != len(data[i]) {
			return fmt.Errorf("nn: tensor %d has %d values, network expects %d", i, len(data[i]), len(p.Value.Data))
		}
		copy(p.Value.Data, data[i])
	}
	return nil
}
