package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects the nonlinearity of a layer.
type Activation int

// Supported activations.
const (
	// Identity applies no nonlinearity (output layers).
	Identity Activation = iota + 1
	// ReLU is max(0, x).
	ReLU
	// Tanh is the hyperbolic tangent.
	Tanh
)

// applyInto computes dst = σ(z) element-wise, resizing dst in place.
func (a Activation) applyInto(dst, z *Matrix) {
	dst.EnsureShape(z.Rows, z.Cols)
	switch a {
	case Identity:
		copy(dst.Data, z.Data)
	case ReLU:
		for i, v := range z.Data {
			if v < 0 {
				dst.Data[i] = 0
			} else {
				dst.Data[i] = v
			}
		}
	case Tanh:
		for i, v := range z.Data {
			dst.Data[i] = math.Tanh(v)
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(a)))
	}
}

// backwardInto computes dst = dY ⊙ dσ/dz element-wise from the cached
// pre-activation z and output y — the fused form of the former
// Hadamard(dY, gradFactor(z, y)); each element is the identical product, so
// gradients are bit-identical to the allocating version.
func (a Activation) backwardInto(dst, dY, z, y *Matrix) {
	shapeEqual("activation backward", dY, z)
	dst.EnsureShape(z.Rows, z.Cols)
	switch a {
	case Identity:
		copy(dst.Data, dY.Data)
	case ReLU:
		for i, v := range z.Data {
			if v > 0 {
				dst.Data[i] = dY.Data[i] * 1
			} else {
				// dY·0, not the constant 0: keeps zero signs and NaN
				// propagation bit-identical to the Hadamard formulation.
				dst.Data[i] = dY.Data[i] * 0
			}
		}
	case Tanh:
		for i := range z.Data {
			dst.Data[i] = dY.Data[i] * (1 - y.Data[i]*y.Data[i])
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(a)))
	}
}

// Dense is a fully connected layer y = σ(xW + b) with cached forward state
// for backpropagation. Inputs are batch-major: x is batch×in.
//
// Forward and Backward write into layer-owned scratch matrices that are
// resized in place, so steady-state evaluation allocates nothing. The
// returned matrices are owned by the layer and valid until its next
// Forward/Backward call; callers that retain results must copy them.
type Dense struct {
	In, Out int
	Act     Activation

	W *Matrix // In×Out
	B *Matrix // 1×Out

	gradW *Matrix
	gradB *Matrix

	lastX *Matrix // batch×In (caller-owned input, not copied)
	z     *Matrix // pre-activation scratch
	y     *Matrix // post-activation scratch

	dZ       *Matrix // backward scratch: dY ⊙ σ'
	dX       *Matrix // backward scratch: returned input gradient
	gradWTmp *Matrix // backward scratch: xᵀ dZ before accumulation
}

// NewDense builds a dense layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, in, out int, act Activation) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		W: NewMatrix(in, out), B: NewMatrix(1, out),
		gradW: NewMatrix(in, out), gradB: NewMatrix(1, out),
		z: new(Matrix), y: new(Matrix),
		dZ: new(Matrix), dX: new(Matrix), gradWTmp: new(Matrix),
	}
	d.W.XavierInit(rng, in, out)
	return d
}

// Forward computes the layer output and caches intermediates. The returned
// matrix is layer-owned scratch, valid until the next Forward call.
func (d *Dense) Forward(x *Matrix) *Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense input %d, want %d", x.Cols, d.In))
	}
	MatMulInto(d.z, x, d.W)
	for r := 0; r < d.z.Rows; r++ {
		row := d.z.Data[r*d.z.Cols : (r+1)*d.z.Cols]
		for c, bv := range d.B.Data {
			row[c] += bv
		}
	}
	d.lastX = x
	d.Act.applyInto(d.y, d.z)
	return d.y
}

// Backward accumulates parameter gradients for upstream gradient dY and
// returns the gradient with respect to the input (layer-owned scratch).
func (d *Dense) Backward(dY *Matrix) *Matrix {
	if d.lastX == nil {
		panic("nn: dense backward before forward")
	}
	d.Act.backwardInto(d.dZ, dY, d.z, d.y)
	matMulATInto(d.gradWTmp, d.lastX, d.dZ)
	d.gradW.AddInPlace(d.gradWTmp)
	// Bias gradient: column sums of dZ.
	for r := 0; r < d.dZ.Rows; r++ {
		for c := 0; c < d.dZ.Cols; c++ {
			d.gradB.Data[c] += d.dZ.Data[r*d.dZ.Cols+c]
		}
	}
	matMulBTInto(d.dX, d.dZ, d.W)
	return d.dX
}

// Params exposes the layer parameters to the optimizer.
func (d *Dense) Params() []Param {
	return []Param{
		{Value: d.W, Grad: d.gradW, Name: "dense.W"},
		{Value: d.B, Grad: d.gradB, Name: "dense.B"},
	}
}

// MLP is a multi-layer perceptron: hidden layers with a shared activation
// followed by an identity output layer.
type MLP struct {
	layers []*Dense
}

// NewMLP builds an MLP with the given hidden sizes (e.g. 256, 256 for the
// paper's default actor/critic heads) and output dimension.
func NewMLP(rng *rand.Rand, in int, hidden []int, out int, act Activation) *MLP {
	m := &MLP{}
	prev := in
	for _, h := range hidden {
		m.layers = append(m.layers, NewDense(rng, prev, h, act))
		prev = h
	}
	m.layers = append(m.layers, NewDense(rng, prev, out, Identity))
	return m
}

// Forward runs all layers. Rows of x are independent samples: evaluating a
// row-stacked batch produces, row for row, the identical results (and
// floating-point operation sequence) as evaluating each row alone, which
// the batched-equals-single differential tests assert. The returned matrix
// is scratch owned by the output layer.
func (m *MLP) Forward(x *Matrix) *Matrix {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward backpropagates and returns the input gradient (scratch owned by
// the first layer).
func (m *MLP) Backward(dY *Matrix) *Matrix {
	for i := len(m.layers) - 1; i >= 0; i-- {
		dY = m.layers[i].Backward(dY)
	}
	return dY
}

// Params lists all layer parameters.
func (m *MLP) Params() []Param {
	var ps []Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
