package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects the nonlinearity of a layer.
type Activation int

// Supported activations.
const (
	// Identity applies no nonlinearity (output layers).
	Identity Activation = iota + 1
	// ReLU is max(0, x).
	ReLU
	// Tanh is the hyperbolic tangent.
	Tanh
)

// apply computes the activation of z element-wise.
func (a Activation) apply(z *Matrix) *Matrix {
	out := z.Clone()
	switch a {
	case Identity:
	case ReLU:
		for i, v := range out.Data {
			if v < 0 {
				out.Data[i] = 0
			}
		}
	case Tanh:
		for i, v := range out.Data {
			out.Data[i] = math.Tanh(v)
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(a)))
	}
	return out
}

// gradFactor returns dσ/dz given pre-activation z and activation output y.
func (a Activation) gradFactor(z, y *Matrix) *Matrix {
	g := NewMatrix(z.Rows, z.Cols)
	switch a {
	case Identity:
		for i := range g.Data {
			g.Data[i] = 1
		}
	case ReLU:
		for i, v := range z.Data {
			if v > 0 {
				g.Data[i] = 1
			}
		}
	case Tanh:
		for i := range g.Data {
			g.Data[i] = 1 - y.Data[i]*y.Data[i]
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(a)))
	}
	return g
}

// Dense is a fully connected layer y = σ(xW + b) with cached forward state
// for backpropagation. Inputs are batch-major: x is batch×in.
type Dense struct {
	In, Out int
	Act     Activation

	W *Matrix // In×Out
	B *Matrix // 1×Out

	gradW *Matrix
	gradB *Matrix

	lastX *Matrix // batch×In
	lastZ *Matrix // pre-activation
	lastY *Matrix // post-activation
}

// NewDense builds a dense layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, in, out int, act Activation) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		W: NewMatrix(in, out), B: NewMatrix(1, out),
		gradW: NewMatrix(in, out), gradB: NewMatrix(1, out),
	}
	d.W.XavierInit(rng, in, out)
	return d
}

// Forward computes the layer output and caches intermediates.
func (d *Dense) Forward(x *Matrix) *Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense input %d, want %d", x.Cols, d.In))
	}
	z := MatMul(x, d.W)
	for r := 0; r < z.Rows; r++ {
		for c := 0; c < z.Cols; c++ {
			z.Data[r*z.Cols+c] += d.B.Data[c]
		}
	}
	d.lastX = x
	d.lastZ = z
	d.lastY = d.Act.apply(z)
	return d.lastY
}

// Backward accumulates parameter gradients for upstream gradient dY and
// returns the gradient with respect to the input.
func (d *Dense) Backward(dY *Matrix) *Matrix {
	if d.lastX == nil {
		panic("nn: dense backward before forward")
	}
	dZ := Hadamard(dY, d.Act.gradFactor(d.lastZ, d.lastY))
	d.gradW.AddInPlace(MatMul(d.lastX.Transpose(), dZ))
	// Bias gradient: column sums of dZ.
	for r := 0; r < dZ.Rows; r++ {
		for c := 0; c < dZ.Cols; c++ {
			d.gradB.Data[c] += dZ.Data[r*dZ.Cols+c]
		}
	}
	return MatMul(dZ, d.W.Transpose())
}

// Params exposes the layer parameters to the optimizer.
func (d *Dense) Params() []Param {
	return []Param{
		{Value: d.W, Grad: d.gradW, Name: "dense.W"},
		{Value: d.B, Grad: d.gradB, Name: "dense.B"},
	}
}

// MLP is a multi-layer perceptron: hidden layers with a shared activation
// followed by an identity output layer.
type MLP struct {
	layers []*Dense
}

// NewMLP builds an MLP with the given hidden sizes (e.g. 256, 256 for the
// paper's default actor/critic heads) and output dimension.
func NewMLP(rng *rand.Rand, in int, hidden []int, out int, act Activation) *MLP {
	m := &MLP{}
	prev := in
	for _, h := range hidden {
		m.layers = append(m.layers, NewDense(rng, prev, h, act))
		prev = h
	}
	m.layers = append(m.layers, NewDense(rng, prev, out, Identity))
	return m
}

// Forward runs all layers.
func (m *MLP) Forward(x *Matrix) *Matrix {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward backpropagates and returns the input gradient.
func (m *MLP) Backward(dY *Matrix) *Matrix {
	for i := len(m.layers) - 1; i >= 0; i-- {
		dY = m.layers[i].Backward(dY)
	}
	return dY
}

// Params lists all layer parameters.
func (m *MLP) Params() []Param {
	var ps []Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
