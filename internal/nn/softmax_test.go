package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaskLogits(t *testing.T) {
	out := MaskLogits([]float64{1, 2, 3}, []bool{true, false, true})
	if out[0] != 1 || !math.IsInf(out[1], -1) || out[2] != 3 {
		t.Fatalf("MaskLogits = %v", out)
	}
}

func TestMaskLogitsLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaskLogits([]float64{1}, []bool{true, false})
}

func TestSoftmaxSumsToOneAndRespectsMask(t *testing.T) {
	logits := MaskLogits([]float64{0.5, 1.5, -0.3, 2.0}, []bool{true, false, true, true})
	p := Softmax(logits)
	if p[1] != 0 {
		t.Fatal("masked action has nonzero probability")
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// Highest logit wins.
	if Argmax(p) != 3 {
		t.Fatalf("Argmax = %d, want 3", Argmax(p))
	}
}

func TestLogSoftmaxStability(t *testing.T) {
	// Huge logits must not overflow.
	lp := LogSoftmax([]float64{1000, 1000, 999})
	for _, v := range lp {
		if math.IsNaN(v) || v > 0 {
			t.Fatalf("unstable log-softmax: %v", lp)
		}
	}
	var sum float64
	for _, v := range lp {
		sum += math.Exp(v)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("exp(logp) sums to %v", sum)
	}
}

func TestLogSoftmaxAllMaskedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogSoftmax([]float64{NegInf, NegInf})
}

func TestSampleCategoricalDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	probs := []float64{0.2, 0, 0.5, 0.3}
	counts := make([]int, 4)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(rng, probs)]++
	}
	if counts[1] != 0 {
		t.Fatal("zero-probability action sampled")
	}
	for i, p := range probs {
		if p == 0 {
			continue
		}
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("action %d frequency %v, want ~%v", i, got, p)
		}
	}
}

func TestSampleCategoricalRoundingFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Sums to slightly less than 1: the last positive entry absorbs it.
	probs := []float64{0.4999999, 0.4999999}
	for i := 0; i < 100; i++ {
		idx := SampleCategorical(rng, probs)
		if idx != 0 && idx != 1 {
			t.Fatalf("sampled %d", idx)
		}
	}
}

func TestSampleCategoricalAllZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SampleCategorical(rand.New(rand.NewSource(1)), []float64{0, 0})
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]float64{1, 0}); h != 0 {
		t.Fatalf("deterministic entropy = %v", h)
	}
	if h := Entropy([]float64{0.5, 0.5}); math.Abs(h-math.Log(2)) > 1e-12 {
		t.Fatalf("uniform entropy = %v, want ln 2", h)
	}
}

func TestLogSoftmaxGradMatchesFiniteDifference(t *testing.T) {
	logits := []float64{0.3, -1.2, 0.8, NegInf, 0.1}
	action := 2
	grad := LogSoftmaxGrad(logits, action)
	const eps = 1e-6
	for i := range logits {
		if math.IsInf(logits[i], -1) {
			if grad[i] != 0 {
				t.Fatalf("masked logit has gradient %v", grad[i])
			}
			continue
		}
		orig := logits[i]
		logits[i] = orig + eps
		up := LogSoftmax(logits)[action]
		logits[i] = orig - eps
		down := LogSoftmax(logits)[action]
		logits[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(grad[i]-numeric) > 1e-5 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, grad[i], numeric)
		}
	}
}

func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	prop := func(a, b, c, shift float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(shift) {
			return true
		}
		clamp := func(x float64) float64 { return math.Mod(x, 50) }
		l1 := []float64{clamp(a), clamp(b), clamp(c)}
		l2 := []float64{l1[0] + clamp(shift), l1[1] + clamp(shift), l1[2] + clamp(shift)}
		p1, p2 := Softmax(l1), Softmax(l2)
		for i := range p1 {
			if math.Abs(p1[i]-p2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Regression: LogSoftmaxGrad on an action whose logit is -inf used to zero
// the masked entry and then increment it, leaving a +1 gradient that
// pushed probability mass onto a disabled action. It must panic instead.
func TestLogSoftmaxGradMaskedActionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gradient of a masked action did not panic")
		}
	}()
	logits := MaskLogits([]float64{1, 2, 3}, []bool{true, false, true})
	LogSoftmaxGrad(logits, 1)
}
