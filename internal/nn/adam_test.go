package nn

import (
	"strings"
	"testing"
)

func adamParams(shapes ...[2]int) []Param {
	ps := make([]Param, len(shapes))
	for i, s := range shapes {
		ps[i] = Param{Value: NewMatrix(s[0], s[1]), Grad: NewMatrix(s[0], s[1])}
	}
	return ps
}

func TestAdamStepUpdatesParams(t *testing.T) {
	ps := adamParams([2]int{2, 2})
	for j := range ps[0].Grad.Data {
		ps[0].Grad.Data[j] = 1
	}
	a := NewAdam(0.1)
	a.Step(ps)
	if a.Steps() != 1 {
		t.Fatalf("Steps = %d, want 1", a.Steps())
	}
	for j, v := range ps[0].Value.Data {
		if v >= 0 {
			t.Fatalf("param[%d] = %v, want negative after positive-gradient step", j, v)
		}
	}
}

// Regression: Step used to index the moment tensors positionally with no
// validation, so a parameter list that changed length or shape between
// calls silently paired parameters with foreign momenta (and could write
// out of bounds). It must fail loudly instead.
func TestAdamStepPanicsOnParamCountChange(t *testing.T) {
	a := NewAdam(0.01)
	a.Step(adamParams([2]int{1, 2}, [2]int{2, 2}))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("shrunk parameter list did not panic")
		}
		if !strings.Contains(r.(string), "adam stepped with 1 params") {
			t.Fatalf("unhelpful panic: %v", r)
		}
	}()
	a.Step(adamParams([2]int{1, 2}))
}

func TestAdamStepPanicsOnParamShapeChange(t *testing.T) {
	a := NewAdam(0.01)
	a.Step(adamParams([2]int{1, 2}, [2]int{2, 2}))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("reshaped parameter did not panic")
		}
		if !strings.Contains(r.(string), "adam param 1 is 3x2") {
			t.Fatalf("unhelpful panic: %v", r)
		}
	}()
	a.Step(adamParams([2]int{1, 2}, [2]int{3, 2}))
}
