package sim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// dualHomed builds 2 end stations (0,1) each connected to switches 2 and 3
// (with a switch-switch link), so any single switch failure is survivable.
func dualHomed(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	g.AddVertex("es0", graph.KindEndStation)
	g.AddVertex("es1", graph.KindEndStation)
	g.AddVertex("swA", graph.KindSwitch)
	g.AddVertex("swB", graph.KindSwitch)
	for es := 0; es < 2; es++ {
		for sw := 2; sw < 4; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	return g
}

func simFixture(t testing.TB) *Simulator {
	t.Helper()
	net := tsn.DefaultNetwork()
	return &Simulator{
		Topo: dualHomed(t),
		Net:  net,
		Flows: tsn.FlowSet{
			{ID: 0, Src: 0, Dsts: []int{1}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64},
			{ID: 1, Src: 1, Dsts: []int{0}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64},
		},
		NBF: &nbf.StatelessRecovery{MaxAlternatives: 3},
		Cfg: Config{HorizonBasePeriods: 20, DetectionSlots: 20, ReconfigSlots: 20},
	}
}

func TestSimFaultFreeDeliversEverything(t *testing.T) {
	s := simFixture(t)
	res, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalReleased != 2*20 {
		t.Fatalf("released = %d, want 40", res.TotalReleased)
	}
	if res.TotalLost != 0 || res.DeliveryRate() != 1 {
		t.Fatalf("fault-free run lost frames: %+v", res)
	}
	if len(res.Recoveries) != 0 {
		t.Fatal("no recoveries expected")
	}
}

func TestSimSurvivableSwitchFailure(t *testing.T) {
	s := simFixture(t)
	// Fail swA at slot 100 (base period 5).
	res, err := s.Run([]Event{{Slot: 100, Failure: nbf.Failure{Nodes: []int{2}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 1 {
		t.Fatalf("recoveries = %d", len(res.Recoveries))
	}
	rec := res.Recoveries[0]
	if !rec.Recovered {
		t.Fatalf("dual-homed failure must be recoverable: %+v", rec)
	}
	if rec.EffectiveAt != 100+20+20 {
		t.Fatalf("EffectiveAt = %d, want 140", rec.EffectiveAt)
	}
	// Frames routed through swA between slots 100 and 140 are lost; after
	// the new configuration everything flows again.
	if res.TotalLost == 0 {
		t.Fatal("expected losses during the recovery gap")
	}
	if rec.LostDuringGap == 0 {
		t.Fatal("gap losses not attributed to the recovery")
	}
	if res.TotalDelivered+res.TotalLost != res.TotalReleased {
		t.Fatal("delivery accounting broken")
	}
	// Deliveries must resume: frames released in the last base period are
	// delivered (they are after EffectiveAt).
	if res.DeliveryRate() < 0.5 {
		t.Fatalf("delivery rate %v too low for a survivable failure", res.DeliveryRate())
	}
}

func TestSimUnrecoverableFailureReported(t *testing.T) {
	s := simFixture(t)
	// Fail both switches: nothing can recover.
	res, err := s.Run([]Event{{Slot: 40, Failure: nbf.Failure{Nodes: []int{2, 3}}}})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recoveries[0]
	if rec.Recovered {
		t.Fatal("total switch loss reported recovered")
	}
	if len(rec.UnrecoveredPairs) == 0 {
		t.Fatal("unrecovered pairs missing")
	}
	// All frames after slot 40's releases through dead switches are lost.
	if res.TotalLost == 0 {
		t.Fatal("expected permanent losses")
	}
}

func TestSimConsecutiveFailures(t *testing.T) {
	s := simFixture(t)
	// swA dies, the network recovers onto swB, then swB dies too.
	res, err := s.Run([]Event{
		{Slot: 60, Failure: nbf.Failure{Nodes: []int{2}}},
		{Slot: 200, Failure: nbf.Failure{Nodes: []int{3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 2 {
		t.Fatalf("recoveries = %d", len(res.Recoveries))
	}
	if !res.Recoveries[0].Recovered {
		t.Fatal("first failure should be recoverable")
	}
	if res.Recoveries[1].Recovered {
		t.Fatal("second failure leaves no switches; must be unrecoverable")
	}
	// Frames released before slot 60 must all be delivered.
	if res.TotalDelivered == 0 {
		t.Fatal("early frames should be delivered")
	}
}

func TestSimLinkFailure(t *testing.T) {
	s := simFixture(t)
	res, err := s.Run([]Event{{Slot: 0, Failure: nbf.Failure{Edges: []graph.Edge{{U: 0, V: 2}}}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recoveries[0].Recovered {
		t.Fatal("single link failure must be recoverable on a dual-homed net")
	}
	// After the recovery becomes effective no frame may touch (0,2).
	if res.DeliveryRate() == 0 {
		t.Fatal("delivery should resume")
	}
}

func TestSimImmediateFailureAtSlotZero(t *testing.T) {
	s := simFixture(t)
	s.Cfg.DetectionSlots = 0
	s.Cfg.ReconfigSlots = 0
	res, err := s.Run([]Event{{Slot: 0, Failure: nbf.Failure{Nodes: []int{2}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Instant recovery: the new configuration is effective from slot 0, so
	// nothing is lost.
	if res.TotalLost != 0 {
		t.Fatalf("instant reconfiguration should lose nothing, lost %d", res.TotalLost)
	}
}

func TestSimValidation(t *testing.T) {
	s := simFixture(t)
	s.Topo = nil
	if _, err := s.Run(nil); err == nil {
		t.Error("nil topology accepted")
	}
	s = simFixture(t)
	s.Cfg.HorizonBasePeriods = 0
	if _, err := s.Run(nil); err == nil {
		t.Error("zero horizon accepted")
	}
	s = simFixture(t)
	s.Cfg.DetectionSlots = -1
	if _, err := s.Run(nil); err == nil {
		t.Error("negative latency accepted")
	}
	s = simFixture(t)
	if _, err := s.Run([]Event{{Slot: -5}}); err == nil {
		t.Error("negative event slot accepted")
	}
	s = simFixture(t)
	s.Net = tsn.Network{}
	if _, err := s.Run(nil); err == nil {
		t.Error("invalid network accepted")
	}
	s = simFixture(t)
	s.Flows = tsn.FlowSet{{ID: 0, Src: 0, Dsts: []int{1}, Period: 0, Deadline: 0, FrameSize: 1}}
	if _, err := s.Run(nil); err == nil {
		t.Error("invalid flows accepted")
	}
}

func TestSimDeterministic(t *testing.T) {
	s := simFixture(t)
	events := []Event{{Slot: 77, Failure: nbf.Failure{Nodes: []int{3}}}}
	r1, err := s.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalDelivered != r2.TotalDelivered || r1.TotalLost != r2.TotalLost {
		t.Fatal("simulation not deterministic")
	}
}

func TestDefaultConfig(t *testing.T) {
	net := tsn.DefaultNetwork()
	cfg := DefaultConfig(net)
	if cfg.HorizonBasePeriods != 64 || cfg.DetectionSlots != 20 || cfg.ReconfigSlots != 20 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}

func TestDeliveryRateEmpty(t *testing.T) {
	r := &Result{}
	if r.DeliveryRate() != 1 {
		t.Fatal("idle network should report full delivery")
	}
}
