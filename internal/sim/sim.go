// Package sim is a slot-accurate TSSDN simulator: it plays a planned
// network's TAS schedule over time, injects component failures mid-run,
// models the SDN controller's detection + reconfiguration latency, invokes
// the recovery mechanism (the NBF, §II-B: "it can be obtained via network
// simulation"), and reports per-flow delivery, loss and recovery metrics.
// It is the dynamic counterpart of the static failure analyzer: where
// Algorithm 3 asks "is every non-safe fault recoverable?", the simulator
// shows what the recovery actually looks like on the timeline.
package sim

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// Event injects a failure scenario at an absolute slot. Failures are
// permanent (the random-failure model of §II-A) and accumulate.
type Event struct {
	Slot    int
	Failure nbf.Failure
}

// Config sets the simulation horizon and the controller latency model.
type Config struct {
	// HorizonBasePeriods is the simulated duration in base periods.
	HorizonBasePeriods int
	// DetectionSlots is the latency between a failure and the controller
	// learning about it (monitoring / keep-alive delay).
	DetectionSlots int
	// ReconfigSlots is the latency of computing and deploying the new
	// configuration after detection (the reconfiguration protocol of [6]).
	ReconfigSlots int
}

// DefaultConfig simulates 64 base periods with a one-base-period detection
// and reconfiguration latency each.
func DefaultConfig(net tsn.Network) Config {
	return Config{
		HorizonBasePeriods: 64,
		DetectionSlots:     net.SlotsPerBase,
		ReconfigSlots:      net.SlotsPerBase,
	}
}

// FlowStats aggregates one (flow, destination) pair's delivery record.
type FlowStats struct {
	Released  int
	Delivered int
	Lost      int
}

// Recovery describes the controller's reaction to one failure event.
type Recovery struct {
	// InjectedAt is the failure's absolute slot.
	InjectedAt int
	// EffectiveAt is the slot from which the recomputed configuration is
	// active (injection + detection + reconfiguration).
	EffectiveAt int
	// Recovered is true when the recomputed configuration restored every
	// demanded pair.
	Recovered bool
	// UnrecoveredPairs lists pairs the NBF could not restore.
	UnrecoveredPairs []tsn.Pair
	// LostDuringGap counts frames lost between injection and the new
	// configuration taking effect.
	LostDuringGap int
}

// Result is the outcome of one simulation run.
type Result struct {
	PerPair    map[tsn.Pair]*FlowStats
	Recoveries []Recovery

	TotalReleased  int
	TotalDelivered int
	TotalLost      int
	// SteadyStateLost counts frames lost although they were released at or
	// after the last recovery took effect — i.e. under the final
	// configuration, outside any detection/reconfiguration gap. A recovered
	// network must have zero steady-state losses; a nonzero count means the
	// final configuration still routes frames through failed components,
	// which is exactly the NBF bug class the certification audit hunts.
	SteadyStateLost int
	// NBFCalls counts recovery simulations performed (the initial
	// configuration plus one per failure event).
	NBFCalls int
}

// DeliveryRate returns delivered/released (1.0 for an idle network).
func (r *Result) DeliveryRate() float64 {
	if r.TotalReleased == 0 {
		return 1
	}
	return float64(r.TotalDelivered) / float64(r.TotalReleased)
}

// Simulator drives a planned topology under a recovery mechanism.
type Simulator struct {
	Topo  *graph.Graph
	Net   tsn.Network
	Flows tsn.FlowSet
	NBF   nbf.NBF
	Cfg   Config
}

// segment is one interval of the timeline governed by a fixed flow state
// (the configuration deployed by the controller from slot `from` on).
type segment struct {
	from  int // first slot (inclusive)
	state *tsn.State
}

// Run simulates the configured horizon with the given failure events
// (sorted by slot internally). It returns an error only for invalid
// inputs; failures and unrecoverable pairs are reported in the Result.
func (s *Simulator) Run(events []Event) (*Result, error) {
	return s.RunContext(context.Background(), events)
}

// RunContext is Run with cancellation: the context is checked before every
// recovery simulation (the expensive step) and periodically during release
// playback, so long fault-injection campaigns stop promptly when the caller
// is cancelled. On cancellation it returns ctx.Err().
func (s *Simulator) RunContext(ctx context.Context, events []Event) (*Result, error) {
	if s.Topo == nil || s.NBF == nil {
		return nil, fmt.Errorf("sim: nil topology or NBF")
	}
	if err := s.Net.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := s.Flows.Validate(s.Net.BasePeriod); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if s.Cfg.HorizonBasePeriods <= 0 {
		return nil, fmt.Errorf("sim: horizon must be positive")
	}
	if s.Cfg.DetectionSlots < 0 || s.Cfg.ReconfigSlots < 0 {
		return nil, fmt.Errorf("sim: negative controller latency")
	}
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Slot < evs[j].Slot })
	for _, e := range evs {
		if e.Slot < 0 {
			return nil, fmt.Errorf("sim: negative event slot %d", e.Slot)
		}
	}

	res := &Result{PerPair: make(map[tsn.Pair]*FlowStats)}
	for _, p := range s.Flows.Pairs() {
		if _, ok := res.PerPair[p]; !ok {
			res.PerPair[p] = &FlowStats{}
		}
	}

	// Initial configuration FI0.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fi0, er0, err := s.NBF.Recover(s.Topo, nbf.Failure{}, s.Net, s.Flows)
	if err != nil {
		return nil, fmt.Errorf("sim: initial configuration: %w", err)
	}
	res.NBFCalls++
	_ = er0 // pairs in ER0 simply have no plan and count as lost

	// Build the timeline segments: each failure event triggers a
	// recomputation over the CUMULATIVE failure set (stateless NBF: the
	// result is independent of intermediate states, §II-B).
	segments := []segment{{from: 0, state: fi0}}
	var cumulative nbf.Failure
	// failureAt records when each component failed, for in-flight losses.
	nodeFailedAt := make(map[int]int)
	edgeFailedAt := make(map[graph.Edge]int)

	for i, e := range evs {
		cumulative.Nodes = append(cumulative.Nodes, e.Failure.Nodes...)
		cumulative.Edges = append(cumulative.Edges, e.Failure.Edges...)
		for _, n := range e.Failure.Nodes {
			if _, dup := nodeFailedAt[n]; !dup {
				nodeFailedAt[n] = e.Slot
			}
		}
		for _, ed := range e.Failure.Edges {
			ce := ed.Canonical()
			ce.Length = 0
			if _, dup := edgeFailedAt[ce]; !dup {
				edgeFailedAt[ce] = e.Slot
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		newState, er, err := s.NBF.Recover(s.Topo, cumulative.Clone(), s.Net, s.Flows)
		if err != nil {
			return nil, fmt.Errorf("sim: recovery after event %d: %w", i, err)
		}
		res.NBFCalls++
		effective := e.Slot + s.Cfg.DetectionSlots + s.Cfg.ReconfigSlots
		segments = append(segments, segment{from: effective, state: newState})
		res.Recoveries = append(res.Recoveries, Recovery{
			InjectedAt:       e.Slot,
			EffectiveAt:      effective,
			Recovered:        len(er) == 0,
			UnrecoveredPairs: append([]tsn.Pair(nil), er...),
		})
	}

	// Play the releases.
	horizon := s.Cfg.HorizonBasePeriods * s.Net.SlotsPerBase
	finalFrom := segments[len(segments)-1].from
	for _, f := range s.Flows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		periodSlots := s.Net.PeriodSlots(f.Period)
		for _, dst := range f.Dsts {
			pair := tsn.Pair{Src: f.Src, Dst: dst}
			stats := res.PerPair[pair]
			for release := 0; release < horizon; release += periodSlots {
				stats.Released++
				res.TotalReleased++
				seg := activeSegment(segments, release)
				plan, ok := seg.state.PlanFor(f.ID, dst)
				if !ok {
					stats.Lost++
					res.TotalLost++
					s.chargeGap(res, evs, release)
					if release >= finalFrom {
						res.SteadyStateLost++
					}
					continue
				}
				if s.frameSurvives(plan, release, nodeFailedAt, edgeFailedAt) {
					stats.Delivered++
					res.TotalDelivered++
					continue
				}
				stats.Lost++
				res.TotalLost++
				s.chargeGap(res, evs, release)
				if release >= finalFrom {
					res.SteadyStateLost++
				}
			}
		}
	}
	return res, nil
}

// activeSegment returns the last segment whose start is <= slot.
func activeSegment(segments []segment, slot int) segment {
	active := segments[0]
	for _, s := range segments[1:] {
		if s.from <= slot {
			active = s
		}
	}
	return active
}

// frameSurvives checks whether a frame released at `release` completes its
// plan without touching a component that has already failed at each hop's
// transmission instant.
func (s *Simulator) frameSurvives(plan tsn.FlowPlan, release int, nodeFailedAt map[int]int, edgeFailedAt map[graph.Edge]int) bool {
	for i := 0; i+1 < len(plan.Path); i++ {
		at := release + plan.Slots[i]
		u, v := plan.Path[i], plan.Path[i+1]
		if t, failed := nodeFailedAt[u]; failed && t <= at {
			return false
		}
		if t, failed := nodeFailedAt[v]; failed && t <= at {
			return false
		}
		ce := graph.Edge{U: u, V: v}.Canonical()
		ce.Length = 0
		if t, failed := edgeFailedAt[ce]; failed && t <= at {
			return false
		}
	}
	return true
}

// chargeGap attributes a lost frame to the most recent failure whose
// recovery was not yet effective at the release instant.
func (s *Simulator) chargeGap(res *Result, evs []Event, release int) {
	for i := len(evs) - 1; i >= 0; i-- {
		r := &res.Recoveries[i]
		if evs[i].Slot <= release && release < r.EffectiveAt {
			r.LostDuringGap++
			return
		}
	}
}
