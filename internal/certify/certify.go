// Package certify is an independent solution-certification audit for
// planned TSSDNs. Where the planner trusts its own failure analyzer
// (Algorithm 3), the certifier re-derives the reliability guarantee by
// independent means before a solution ships: it re-validates the structure
// from scratch, recomputes the Eq. 1 cost through the component-library
// API, re-runs the analyzer, cross-checks it against the exhaustive
// switch-and-link brute force on small instances (empirically exercising
// the §V switch-only-sufficiency proof), and drives seeded Monte Carlo
// fault-injection campaigns through the event simulator, asserting that
// every sampled failure scenario with probability >= R delivers all TT
// frames after NBF recovery. Counterexamples are delta-debugged to a
// smallest failing component set and reported in a machine-readable
// certificate.
package certify

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// Options bounds the audit effort.
type Options struct {
	// Samples is the number of Monte Carlo fault-injection trials
	// (default 256).
	Samples int
	// Seed drives the Monte Carlo sampling; campaigns are reproducible.
	Seed int64
	// MaxBruteComponents caps the component count (selected switches +
	// links) for the exhaustive brute-force cross-check; larger instances
	// skip it (default 14, ~16k subsets per order).
	MaxBruteComponents int
	// MaxEnumScenarios caps the exhaustive non-safe-scenario enumeration
	// used to compute the total probability mass behind the coverage
	// figure (default 200000; exceeded => total mass reported as unknown).
	MaxEnumScenarios int
	// HorizonBasePeriods is the simulated duration per injection trial
	// (default 16 base periods).
	HorizonBasePeriods int
	// MaxSplitEvents is the most events a sampled scenario is split into,
	// exercising cumulative recovery (default 3).
	MaxSplitEvents int
	// AnalyzerWorkers bounds the audited analyzer's scenario worker pool
	// (<= 1 keeps it sequential). Ignored when Checker is set explicitly.
	AnalyzerWorkers int
}

func (o *Options) defaults() {
	if o.Samples == 0 {
		o.Samples = 256
	}
	if o.MaxBruteComponents == 0 {
		o.MaxBruteComponents = 14
	}
	if o.MaxEnumScenarios == 0 {
		o.MaxEnumScenarios = 200000
	}
	if o.HorizonBasePeriods == 0 {
		o.HorizonBasePeriods = 16
	}
	if o.MaxSplitEvents == 0 {
		o.MaxSplitEvents = 3
	}
}

// ReliabilityChecker is the analyzer interface the certifier audits.
// *failure.Analyzer satisfies it; tests inject deliberately broken
// implementations to prove the cross-checks catch them.
type ReliabilityChecker interface {
	AnalyzeContext(ctx context.Context, gt *graph.Graph, assign *asil.Assignment, fs tsn.FlowSet) (failure.Result, error)
}

// Certifier audits one (problem, solution) pair.
type Certifier struct {
	Prob *core.Problem
	Sol  *core.Solution
	Opt  Options
	// Checker overrides the audited analyzer (nil = a fresh
	// failure.Analyzer built from the problem). The brute-force and Monte
	// Carlo stages cross-check whatever is plugged in here.
	Checker ReliabilityChecker

	nbfCalls int // recovery simulations across all audit stages
}

// component is a failable unit of the planned network: a selected switch
// or a built link.
type component struct {
	isLink bool
	node   int
	edge   graph.Edge // canonical, zero length
	prob   float64
}

func (c component) String() string {
	if c.isLink {
		return fmt.Sprintf("link(%d,%d)", c.edge.U, c.edge.V)
	}
	return fmt.Sprintf("node(%d)", c.node)
}

// Certify runs the full audit. A non-nil error means the audit itself
// could not run (invalid inputs, cancellation); guarantee violations are
// reported through the certificate's verdict and counterexamples instead.
func (c *Certifier) Certify(ctx context.Context) (*Certificate, error) {
	start := time.Now()
	c.Opt.defaults()
	if c.Prob == nil || c.Sol == nil {
		return nil, fmt.Errorf("certify: nil problem or solution")
	}
	if err := c.Prob.Validate(); err != nil {
		return nil, fmt.Errorf("certify: %w", err)
	}
	if c.Sol.Topology == nil || c.Sol.Assignment == nil {
		return nil, fmt.Errorf("certify: solution has no topology or assignment")
	}
	cert := &Certificate{
		Version: CertificateVersion,
		Seed:    c.Opt.Seed,
		Samples: c.Opt.Samples,
	}
	c.nbfCalls = 0

	// 1. Structure: re-derived from the problem spec, not from
	// core.TSSDN's own invariant checker.
	cert.addCheck("structure", c.checkStructure())
	// 2. Cost: independent Eq. 1 aggregation over the library API.
	cert.addCheck("cost", c.checkCost())
	// 3. Fault-free schedule: FI0 exists for all pairs and meets deadlines.
	cert.addCheck("schedule", c.checkSchedule(ctx))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// A structurally broken solution would make the reliability stages
	// report nonsense (e.g. links without ASIL); stop here if so.
	if cert.failed("structure") {
		cert.NBFCalls = c.nbfCalls
		cert.finish(start)
		return cert, nil
	}

	// 4. Analyzer re-run (Algorithm 3, or the injected checker under audit).
	analyzerOK, err := c.checkAnalyzer(ctx, cert)
	if err != nil {
		return nil, err
	}
	// 5. Brute-force cross-check over switches AND links.
	if err := c.checkBruteForce(ctx, cert, analyzerOK); err != nil {
		return nil, err
	}
	// 6. Monte Carlo fault injection through the event simulator.
	if err := c.runMonteCarlo(ctx, cert); err != nil {
		return nil, err
	}

	cert.NBFCalls = c.nbfCalls
	cert.finish(start)
	return cert, nil
}

// checker returns the analyzer under audit.
func (c *Certifier) checker() ReliabilityChecker {
	if c.Checker != nil {
		return c.Checker
	}
	return &failure.Analyzer{
		Lib:                 c.Prob.Library,
		NBF:                 c.Prob.NBF,
		Net:                 c.Prob.Net,
		R:                   c.Prob.ReliabilityGoal,
		FlowLevelRedundancy: c.Prob.FlowLevelRedundancy,
		ESLevel:             c.Prob.ESLevel,
		Workers:             c.Opt.AnalyzerWorkers,
	}
}

// vertexLevel is the effective ASIL of a vertex for the link-minimum rule.
func (c *Certifier) vertexLevel(v int) asil.Level {
	if c.Prob.Connections.Kind(v) == graph.KindEndStation {
		return c.Prob.ESLevel
	}
	return c.Sol.Assignment.SwitchLevel(v)
}

// checkStructure re-validates the solution against the problem spec from
// first principles: vertex sets match, the topology is a subgraph of Gc
// with the specified cable lengths, degree constraints hold, the ASIL
// assignment is complete and valid, and every link honors the
// ASIL = min(endpoints) rule of §IV-B.
func (c *Certifier) checkStructure() Check {
	gc := c.Prob.Connections
	gt := c.Sol.Topology
	if gt.NumVertices() != gc.NumVertices() {
		return failCheck("topology has %d vertices, connection graph has %d", gt.NumVertices(), gc.NumVertices())
	}
	for v := 0; v < gc.NumVertices(); v++ {
		if gt.Kind(v) != gc.Kind(v) {
			return failCheck("vertex %d kind %v in topology, %v in connection graph", v, gt.Kind(v), gc.Kind(v))
		}
	}
	for _, e := range gt.Edges() {
		if gc.Kind(e.U) == graph.KindEndStation && gc.Kind(e.V) == graph.KindEndStation {
			return failCheck("direct ES-ES link (%d,%d)", e.U, e.V)
		}
		want, ok := gc.EdgeLength(e.U, e.V)
		if !ok {
			return failCheck("link (%d,%d) is not in the connection graph", e.U, e.V)
		}
		if e.Length != want {
			return failCheck("link (%d,%d) length %v, connection graph says %v", e.U, e.V, e.Length, want)
		}
		lvl := c.Sol.Assignment.LinkLevel(e.U, e.V)
		if !lvl.Valid() {
			return failCheck("link (%d,%d) has no valid ASIL", e.U, e.V)
		}
		if want := asil.Min(c.vertexLevel(e.U), c.vertexLevel(e.V)); lvl != want {
			return failCheck("link (%d,%d) ASIL %s, min-endpoint rule requires %s", e.U, e.V, lvl, want)
		}
	}
	for sw, lvl := range c.Sol.Assignment.Switches {
		if gc.Kind(sw) != graph.KindSwitch {
			return failCheck("assigned vertex %d is not an optional switch", sw)
		}
		if !lvl.Valid() {
			return failCheck("switch %d has invalid ASIL %d", sw, int(lvl))
		}
	}
	for _, sw := range gc.VerticesOfKind(graph.KindSwitch) {
		deg := gt.Degree(sw)
		if deg > 0 {
			if _, selected := c.Sol.Assignment.Switches[sw]; !selected {
				return failCheck("switch %d has %d links but no ASIL assignment", sw, deg)
			}
		}
		if deg > c.Prob.Library.MaxSwitchDegree() {
			return failCheck("switch %d uses %d ports, library maximum is %d", sw, deg, c.Prob.Library.MaxSwitchDegree())
		}
	}
	for _, es := range gc.VerticesOfKind(graph.KindEndStation) {
		if deg := gt.Degree(es); deg > c.Prob.MaxESDegree {
			return failCheck("end station %d has degree %d, limit is %d", es, deg, c.Prob.MaxESDegree)
		}
	}
	return passCheck("%d vertices, %d links, %d switches validated against the spec",
		gt.NumVertices(), gt.NumEdges(), len(c.Sol.Assignment.Switches))
}

// checkCost recomputes Eq. 1 by aggregating per-component library prices
// itself instead of calling asil.NetworkCost, so a bug in the planner's
// aggregation cannot certify its own output.
func (c *Certifier) checkCost() Check {
	var total float64
	for sw, lvl := range c.Sol.Assignment.Switches {
		cost, err := c.Prob.Library.SwitchCost(lvl, c.Sol.Topology.Degree(sw))
		if err != nil {
			return failCheck("switch %d: %v", sw, err)
		}
		total += cost
	}
	for _, e := range c.Sol.Topology.Edges() {
		cost, err := c.Prob.Library.LinkCost(c.Sol.Assignment.LinkLevel(e.U, e.V), e.Length)
		if err != nil {
			return failCheck("link (%d,%d): %v", e.U, e.V, err)
		}
		total += cost
	}
	if c.Sol.Cost != 0 && math.Abs(total-c.Sol.Cost) > 1e-6*math.Max(1, math.Abs(total)) {
		return failCheck("recorded cost %v, independent recomputation gives %v", c.Sol.Cost, total)
	}
	return passCheck("cost %.4f recomputed independently", total)
}

// checkSchedule verifies the fault-free configuration FI0: every demanded
// pair gets a plan and every plan meets its deadline.
func (c *Certifier) checkSchedule(ctx context.Context) Check {
	if err := ctx.Err(); err != nil {
		return skipCheck("cancelled")
	}
	fi0, er, err := c.Prob.NBF.Recover(c.Sol.Topology, nbf.Failure{}, c.Prob.Net, c.Prob.Flows)
	c.nbfCalls++
	if err != nil {
		return failCheck("NBF rejected the fault-free topology: %v", err)
	}
	if len(er) > 0 {
		return failCheck("no fault-free schedule for pairs %v", er)
	}
	lats, err := tsn.Latencies(c.Prob.Net, c.Prob.Flows, fi0)
	if err != nil {
		return failCheck("latency audit: %v", err)
	}
	if slack, ok := tsn.MinSlack(lats); ok && slack < 0 {
		return failCheck("schedule violates a deadline by %v", -slack)
	}
	return passCheck("FI0 schedules all %d pairs within their deadlines", len(lats))
}

// checkAnalyzer re-runs the reliability analysis and reports its verdict.
// It returns whether the analyzer declared the guarantee established.
func (c *Certifier) checkAnalyzer(ctx context.Context, cert *Certificate) (bool, error) {
	res, err := c.checker().AnalyzeContext(ctx, c.Sol.Topology, c.Sol.Assignment, c.Prob.Flows)
	if err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		cert.addCheck("analyzer", failCheck("analysis failed: %v", err))
		return false, nil
	}
	c.nbfCalls += res.NBFCalls
	if !res.OK {
		cx, err := c.counterexampleFromNodes(ctx, res.Failure.Nodes, "analyzer")
		if err != nil {
			return false, err
		}
		cert.Counterexamples = append(cert.Counterexamples, cx)
		cert.addCheck("analyzer", failCheck("reliability goal violated by %v", res.Failure))
		return false, nil
	}
	cert.addCheck("analyzer", passCheck("guarantee established (max order %d, %d NBF calls)", res.MaxOrder, res.NBFCalls))
	return true, nil
}

// checkBruteForce exhaustively enumerates non-safe faults over switches
// AND links on small instances and cross-checks the verdict against the
// analyzer. Agreement on failure keeps the certificate's analyzer finding;
// disagreement in either direction is its own failure — the audit's main
// defense against a silently broken analyzer.
func (c *Certifier) checkBruteForce(ctx context.Context, cert *Certificate, analyzerOK bool) error {
	comps := c.components()
	if len(comps) > c.Opt.MaxBruteComponents {
		cert.addCheck("brute-force", skipCheck("%d components exceed the cap %d", len(comps), c.Opt.MaxBruteComponents))
		return nil
	}
	bf := &failure.BruteForce{
		Lib: c.Prob.Library,
		NBF: c.Prob.NBF,
		Net: c.Prob.Net,
		R:   c.Prob.ReliabilityGoal,
	}
	res, err := bf.AnalyzeContext(ctx, c.Sol.Topology, c.Sol.Assignment, c.Prob.Flows)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		cert.addCheck("brute-force", failCheck("brute force failed: %v", err))
		return nil
	}
	c.nbfCalls += res.NBFCalls
	switch {
	case res.OK && analyzerOK:
		cert.addCheck("brute-force", passCheck("verdicts agree: guarantee holds over %d switch+link components (%d NBF calls)", len(comps), res.NBFCalls))
	case !res.OK && !analyzerOK:
		cert.addCheck("brute-force", passCheck("verdicts agree: both found the guarantee violated"))
	case !res.OK && analyzerOK:
		cx, cerr := c.counterexampleFromSet(ctx, c.componentsOf(res.Failure), "brute-force")
		if cerr != nil {
			return cerr
		}
		cert.Counterexamples = append(cert.Counterexamples, cx)
		cert.addCheck("brute-force", failCheck("ANALYZER DISAGREEMENT: analyzer certified the guarantee but exhaustive enumeration found non-safe fault %v unrecoverable", res.Failure))
	default: // res.OK && !analyzerOK
		cert.addCheck("brute-force", failCheck("ANALYZER DISAGREEMENT: analyzer reported a violation but exhaustive enumeration found every non-safe fault recoverable"))
	}
	return nil
}

// components lists the failable units of the planned network: selected
// switches and built links with their ASIL failure probabilities, sorted
// by decreasing probability (ties: nodes before links, then by ID).
func (c *Certifier) components() []component {
	var comps []component
	for _, sw := range c.Sol.Topology.VerticesOfKind(graph.KindSwitch) {
		lvl, ok := c.Sol.Assignment.Switches[sw]
		if !ok {
			continue
		}
		comps = append(comps, component{node: sw, prob: c.Prob.Library.FailureProb(lvl)})
	}
	for _, e := range c.Sol.Topology.Edges() {
		ce := e.Canonical()
		ce.Length = 0
		comps = append(comps, component{isLink: true, edge: ce, prob: c.Prob.Library.FailureProb(c.Sol.Assignment.LinkLevel(e.U, e.V))})
	}
	sort.Slice(comps, func(i, j int) bool {
		a, b := comps[i], comps[j]
		if a.prob != b.prob {
			return a.prob > b.prob
		}
		if a.isLink != b.isLink {
			return !a.isLink
		}
		if !a.isLink {
			return a.node < b.node
		}
		if a.edge.U != b.edge.U {
			return a.edge.U < b.edge.U
		}
		return a.edge.V < b.edge.V
	})
	return comps
}

func failCheck(format string, args ...interface{}) Check {
	return Check{Status: StatusFail, Detail: fmt.Sprintf(format, args...)}
}

func passCheck(format string, args ...interface{}) Check {
	return Check{Status: StatusPass, Detail: fmt.Sprintf(format, args...)}
}

func skipCheck(format string, args ...interface{}) Check {
	return Check{Status: StatusSkipped, Detail: fmt.Sprintf(format, args...)}
}
