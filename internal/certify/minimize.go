package certify

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// failureOf converts a component set to an NBF failure scenario.
func failureOf(set []component) nbf.Failure {
	var f nbf.Failure
	for _, c := range set {
		if c.isLink {
			f.Edges = append(f.Edges, c.edge)
		} else {
			f.Nodes = append(f.Nodes, c.node)
		}
	}
	return f
}

// probOf computes the Eq. 2 scenario probability of a component set.
func probOf(set []component) float64 {
	p := 1.0
	for _, c := range set {
		p *= c.prob
	}
	return p
}

// keyOf is a canonical map key for a component set (the set must be kept
// in the deterministic order produced by components()).
func keyOf(set []component) string {
	parts := make([]string, len(set))
	for i, c := range set {
		parts[i] = c.String()
	}
	return strings.Join(parts, ",")
}

// componentsOf maps a failure scenario back to components with their
// failure probabilities looked up from the solution's assignment.
func (c *Certifier) componentsOf(f nbf.Failure) []component {
	var set []component
	for _, n := range f.Nodes {
		set = append(set, component{node: n, prob: c.Prob.Library.FailureProb(c.Sol.Assignment.SwitchLevel(n))})
	}
	for _, e := range f.Edges {
		ce := e.Canonical()
		ce.Length = 0
		set = append(set, component{isLink: true, edge: ce, prob: c.Prob.Library.FailureProb(c.Sol.Assignment.LinkLevel(e.U, e.V))})
	}
	return set
}

// scenarioFails decides whether the planned network fails under the given
// component set: the NBF either reports unrecoverable pairs, or claims
// recovery with a configuration that still routes frames through failed
// components (the steady-state-loss bug class the simulator surfaces).
func (c *Certifier) scenarioFails(ctx context.Context, set []component) (bool, []tsn.Pair, error) {
	if err := ctx.Err(); err != nil {
		return false, nil, err
	}
	c.nbfCalls++
	st, er, err := c.Prob.NBF.Recover(c.Sol.Topology, failureOf(set), c.Prob.Net, c.Prob.Flows)
	if err != nil {
		return false, nil, fmt.Errorf("certify: recovery: %w", err)
	}
	if len(er) > 0 {
		return true, er, nil
	}
	failedNode := make(map[int]bool)
	failedEdge := make(map[graph.Edge]bool)
	for _, comp := range set {
		if comp.isLink {
			failedEdge[comp.edge] = true
		} else {
			failedNode[comp.node] = true
		}
	}
	var ghost []tsn.Pair
	for _, plan := range st.Plans {
		if planUsesFailed(plan, failedNode, failedEdge) {
			ghost = append(ghost, tsn.Pair{Src: plan.Path[0], Dst: plan.Dst})
		}
	}
	return len(ghost) > 0, ghost, nil
}

// planUsesFailed reports whether a flow plan traverses a failed component.
func planUsesFailed(plan tsn.FlowPlan, failedNode map[int]bool, failedEdge map[graph.Edge]bool) bool {
	for i, v := range plan.Path {
		if failedNode[v] {
			return true
		}
		if i+1 < len(plan.Path) {
			ce := graph.Edge{U: v, V: plan.Path[i+1]}.Canonical()
			ce.Length = 0
			if failedEdge[ce] {
				return true
			}
		}
	}
	return false
}

// minimize delta-debugs a failing component set to a 1-minimal one: every
// single-component removal either makes the scenario recoverable or drops
// its probability below R. Returns the minimized set, its unrecovered
// pairs, its probability, and whether minimization completed (false when
// cut short by cancellation — the set is still failing, just not minimal).
func (c *Certifier) minimize(ctx context.Context, set []component) ([]component, []tsn.Pair, float64, bool, error) {
	cur := append([]component(nil), set...)
	_, curER, err := c.scenarioFails(ctx, cur)
	if err != nil {
		return cur, nil, probOf(cur), false, err
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			if ctx.Err() != nil {
				return cur, curER, probOf(cur), false, nil
			}
			if len(cur) == 1 {
				break
			}
			cand := make([]component, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if probOf(cand) < c.Prob.ReliabilityGoal {
				continue
			}
			fails, er, err := c.scenarioFails(ctx, cand)
			if err != nil {
				if ctx.Err() != nil {
					return cur, curER, probOf(cur), false, nil
				}
				return cur, curER, probOf(cur), false, err
			}
			if fails {
				cur, curER = cand, er
				changed = true
				i--
			}
		}
	}
	return cur, curER, probOf(cur), true, nil
}

// counterexampleFromSet minimizes a failing component set and renders it.
func (c *Certifier) counterexampleFromSet(ctx context.Context, set []component, foundBy string) (Counterexample, error) {
	min, er, p, minimized, err := c.minimize(ctx, set)
	if err != nil {
		return Counterexample{}, err
	}
	return c.newCounterexample(min, p, er, minimized, foundBy), nil
}

// counterexampleFromNodes is counterexampleFromSet for a node-only failure
// (the analyzer's counterexample form).
func (c *Certifier) counterexampleFromNodes(ctx context.Context, nodes []int, foundBy string) (Counterexample, error) {
	return c.counterexampleFromSet(ctx, c.componentsOf(nbf.Failure{Nodes: nodes}), foundBy)
}
