package certify

import (
	"context"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/tsn"

	crng "repro/internal/rng"
)

// runMonteCarlo drives the seeded fault-injection campaign: it samples
// component-failure scenarios by their ASIL failure probabilities, injects
// every distinct non-safe one (probability >= R) into the event simulator —
// split across up to MaxSplitEvents staggered events to exercise cumulative
// recovery — and asserts that each one delivers all TT frames once NBF
// recovery takes effect. The first failing scenario is minimized and
// recorded as a counterexample.
func (c *Certifier) runMonteCarlo(ctx context.Context, cert *Certificate) error {
	comps := c.components()

	// maxord over switch AND link components (cf. Algorithm 3 line 2).
	maxOrd := 0
	p := 1.0
	for _, comp := range comps {
		p *= comp.prob
		if p < c.Prob.ReliabilityGoal {
			break
		}
		maxOrd++
	}

	if mass, ok := c.enumerateNonSafeMass(comps); ok {
		cert.TotalNonSafeMass = mass
	}

	if maxOrd == 0 {
		cert.addCheck("monte-carlo", passCheck("no non-safe failure scenario involves any component (max order 0)"))
		return nil
	}

	rng := rand.New(crng.New(c.Opt.Seed))
	seen := make(map[string]bool)
	for trial := 0; trial < c.Opt.Samples; trial++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		cert.ScenariosChecked++
		set := sampleSubset(comps, 1+rng.Intn(maxOrd), rng)
		if probOf(set) < c.Prob.ReliabilityGoal {
			continue // safe fault: need not be survivable
		}
		key := keyOf(set)
		if seen[key] {
			continue
		}
		seen[key] = true
		cert.DistinctScenarios++
		cert.CoverageMass += probOf(set)

		failingPrefix, er, err := c.inject(ctx, set, rng)
		if err != nil {
			return err
		}
		if failingPrefix != nil {
			cx, cerr := c.counterexampleFromSet(ctx, failingPrefix, "monte-carlo")
			if cerr != nil {
				return cerr
			}
			cert.Counterexamples = append(cert.Counterexamples, cx)
			cert.addCheck("monte-carlo", failCheck(
				"injected non-safe scenario %v left pairs %v undelivered after recovery (trial %d)",
				failureOf(failingPrefix), er, trial))
			return nil
		}
	}
	cert.addCheck("monte-carlo", passCheck("%d distinct non-safe scenarios injected and survived (%d trials, max order %d)",
		cert.DistinctScenarios, cert.ScenariosChecked, maxOrd))
	return nil
}

// sampleSubset draws k distinct components uniformly (partial
// Fisher-Yates over a scratch index slice), returning them in the
// deterministic components() order so scenario keys are canonical.
func sampleSubset(comps []component, k int, rng *rand.Rand) []component {
	idx := make([]int, len(comps))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	picked := append([]int(nil), idx[:k]...)
	// Restore canonical order.
	for i := 1; i < len(picked); i++ {
		for j := i; j > 0 && picked[j] < picked[j-1]; j-- {
			picked[j], picked[j-1] = picked[j-1], picked[j]
		}
	}
	set := make([]component, k)
	for i, ix := range picked {
		set[i] = comps[ix]
	}
	return set
}

// inject plays one scenario through the slot-accurate simulator. The set
// is split into staggered failure events in the first half of the horizon;
// controller latency is one base period each for detection and
// reconfiguration (the simulator default). It returns the failing
// cumulative prefix (nil when the network survives) and the pairs that
// prefix leaves unrecovered or undelivered.
func (c *Certifier) inject(ctx context.Context, set []component, rng *rand.Rand) ([]component, []tsn.Pair, error) {
	numEvents := 1
	if max := c.Opt.MaxSplitEvents; max > 1 && len(set) > 1 {
		if max > len(set) {
			max = len(set)
		}
		numEvents = 1 + rng.Intn(max)
	}
	// Random ascending injection slots in the first half of the horizon,
	// leaving the second half to observe the final configuration in steady
	// state.
	half := c.Opt.HorizonBasePeriods * c.Prob.Net.SlotsPerBase / 2
	if half < 1 {
		half = 1
	}
	slots := make([]int, numEvents)
	for i := range slots {
		slots[i] = rng.Intn(half)
	}
	for i := 1; i < len(slots); i++ {
		for j := i; j > 0 && slots[j] < slots[j-1]; j-- {
			slots[j], slots[j-1] = slots[j-1], slots[j]
		}
	}
	// Deal components to events: the first numEvents components seed one
	// event each (no empty events), the rest go to random events.
	groups := make([][]component, numEvents)
	perm := rng.Perm(len(set))
	for i, pi := range perm {
		g := i
		if i >= numEvents {
			g = rng.Intn(numEvents)
		}
		groups[g] = append(groups[g], set[pi])
	}
	events := make([]sim.Event, numEvents)
	for i, g := range groups {
		events[i] = sim.Event{Slot: slots[i], Failure: failureOf(g)}
	}

	s := &sim.Simulator{
		Topo:  c.Sol.Topology,
		Net:   c.Prob.Net,
		Flows: c.Prob.Flows,
		NBF:   c.Prob.NBF,
		Cfg:   sim.DefaultConfig(c.Prob.Net),
	}
	s.Cfg.HorizonBasePeriods = c.Opt.HorizonBasePeriods
	res, err := s.RunContext(ctx, events)
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, err
	}
	c.nbfCalls += res.NBFCalls

	// Every cumulative prefix of a non-safe scenario is itself non-safe
	// (dropping factors only raises the probability), so each intermediate
	// recovery must succeed too.
	for i, rec := range res.Recoveries {
		if !rec.Recovered {
			var prefix []component
			for _, g := range groups[:i+1] {
				prefix = append(prefix, g...)
			}
			return canonicalize(prefix), rec.UnrecoveredPairs, nil
		}
	}
	if res.SteadyStateLost > 0 {
		// The final configuration claimed recovery but still lost frames:
		// report the full set with the ghost pairs the static re-check finds.
		_, ghost, err := c.scenarioFails(ctx, set)
		if err != nil {
			return nil, nil, err
		}
		return set, ghost, nil
	}
	return nil, nil, nil
}

// canonicalize sorts a component set into the deterministic order used by
// keys and reports (nodes before links at equal probability, then by ID).
func canonicalize(set []component) []component {
	out := append([]component(nil), set...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && componentLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func componentLess(a, b component) bool {
	if a.prob != b.prob {
		return a.prob > b.prob
	}
	if a.isLink != b.isLink {
		return !a.isLink
	}
	if !a.isLink {
		return a.node < b.node
	}
	if a.edge.U != b.edge.U {
		return a.edge.U < b.edge.U
	}
	return a.edge.V < b.edge.V
}

// enumerateNonSafeMass exhaustively sums the Eq. 2 probability of every
// nonempty component subset with probability >= R, pruning on the sorted
// probabilities. It reports ok=false when the subset count exceeds
// MaxEnumScenarios (total mass then stays unknown on the certificate).
func (c *Certifier) enumerateNonSafeMass(comps []component) (float64, bool) {
	var mass float64
	count := 0
	var dfs func(start int, product float64) bool
	dfs = func(start int, product float64) bool {
		for i := start; i < len(comps); i++ {
			p := product * comps[i].prob
			if p < c.Prob.ReliabilityGoal {
				return true // sorted descending: no later component helps
			}
			count++
			if count > c.Opt.MaxEnumScenarios {
				return false
			}
			mass += p
			if !dfs(i+1, p) {
				return false
			}
		}
		return true
	}
	if !dfs(0, 1.0) {
		return 0, false
	}
	return mass, true
}
