package certify

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/serialize"
	"repro/internal/tsn"
)

// dualHomedFixture plans a survivable network: 2 end stations (0, 1) each
// linked to both switches (2, 3) at ASIL-A. Every single component failure
// (probability ~1e-3 >= R = 1e-6) leaves an alternative path; double
// failures fall below R and are safe.
func dualHomedFixture(t testing.TB) (*core.Problem, *core.Solution) {
	t.Helper()
	g := graph.New()
	g.AddVertex("cam", graph.KindEndStation)
	g.AddVertex("ecu", graph.KindEndStation)
	g.AddVertex("swA", graph.KindSwitch)
	g.AddVertex("swB", graph.KindSwitch)
	for es := 0; es < 2; es++ {
		for sw := 2; sw < 4; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	net := tsn.DefaultNetwork()
	prob := &core.Problem{
		Connections: g,
		Net:         net,
		Flows: tsn.FlowSet{
			{ID: 0, Src: 0, Dsts: []int{1}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64},
			{ID: 1, Src: 1, Dsts: []int{0}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64},
		},
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	state := core.NewTSSDN(prob)
	for _, sw := range []int{2, 3} {
		if err := state.UpgradeSwitch(sw); err != nil { // ASIL-A
			t.Fatal(err)
		}
	}
	for _, p := range []graph.Path{{0, 2, 1}, {0, 3, 1}} {
		if err := state.AddPath(p); err != nil {
			t.Fatal(err)
		}
	}
	cost, err := state.Cost()
	if err != nil {
		t.Fatal(err)
	}
	return prob, &core.Solution{Topology: state.Topo, Assignment: state.Assign, Cost: cost}
}

// singleHomedFixture plans a NON-survivable network: end station 0 reaches
// the rest of the network only through switch 2, whose failure probability
// (~1e-3) is far above R = 1e-6. The reliability guarantee cannot hold.
func singleHomedFixture(t testing.TB) (*core.Problem, *core.Solution) {
	t.Helper()
	g := graph.New()
	g.AddVertex("cam", graph.KindEndStation)
	g.AddVertex("ecu", graph.KindEndStation)
	g.AddVertex("swA", graph.KindSwitch)
	g.AddVertex("swB", graph.KindSwitch)
	if err := g.AddEdge(0, 2, 1); err != nil { // cam is single-homed on swA
		t.Fatal(err)
	}
	for sw := 2; sw < 4; sw++ {
		if err := g.AddEdge(1, sw, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	net := tsn.DefaultNetwork()
	prob := &core.Problem{
		Connections: g,
		Net:         net,
		Flows: tsn.FlowSet{
			{ID: 0, Src: 0, Dsts: []int{1}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64},
		},
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	state := core.NewTSSDN(prob)
	if err := state.UpgradeSwitch(2); err != nil {
		t.Fatal(err)
	}
	if err := state.AddPath(graph.Path{0, 2, 1}); err != nil {
		t.Fatal(err)
	}
	cost, err := state.Cost()
	if err != nil {
		t.Fatal(err)
	}
	return prob, &core.Solution{Topology: state.Topo, Assignment: state.Assign, Cost: cost}
}

func TestCertifyPassOnSurvivableNetwork(t *testing.T) {
	prob, sol := dualHomedFixture(t)
	c := &Certifier{Prob: prob, Sol: sol, Opt: Options{Samples: 64, Seed: 7}}
	cert, err := c.Certify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cert.OK() {
		t.Fatalf("expected PASS, got:\n%s", cert.Render())
	}
	for _, ck := range cert.Checks {
		if ck.Status != StatusPass {
			t.Errorf("check %s: %s (%s)", ck.Name, ck.Status, ck.Detail)
		}
	}
	if len(cert.Counterexamples) != 0 {
		t.Fatalf("PASS certificate carries counterexamples: %+v", cert.Counterexamples)
	}
	if cert.NBFCalls == 0 {
		t.Error("no NBF calls recorded")
	}
	if cert.DistinctScenarios == 0 || cert.CoverageMass <= 0 {
		t.Errorf("Monte Carlo coverage empty: %d scenarios, mass %v",
			cert.DistinctScenarios, cert.CoverageMass)
	}
	if cert.TotalNonSafeMass > 0 && cert.CoverageMass > cert.TotalNonSafeMass*(1+1e-9) {
		t.Errorf("coverage mass %v exceeds total non-safe mass %v",
			cert.CoverageMass, cert.TotalNonSafeMass)
	}
	if !strings.Contains(cert.Render(), "PASS") {
		t.Error("render lacks verdict")
	}
}

func TestCertifyFailOnSingleHomedES(t *testing.T) {
	prob, sol := singleHomedFixture(t)
	c := &Certifier{Prob: prob, Sol: sol, Opt: Options{Samples: 64, Seed: 7}}
	cert, err := c.Certify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cert.OK() {
		t.Fatalf("single-homed ES must fail certification:\n%s", cert.Render())
	}
	if len(cert.Counterexamples) == 0 {
		t.Fatal("FAIL certificate has no counterexample")
	}
	cx := cert.Counterexamples[0]
	if !cx.Minimized {
		t.Error("counterexample not minimized")
	}
	if cx.Probability < prob.ReliabilityGoal {
		t.Errorf("counterexample probability %v below R %v", cx.Probability, prob.ReliabilityGoal)
	}
	// The 1-minimal failing set is exactly the single-homing switch (or one
	// of the components on the only path); a single component must suffice.
	if len(cx.Nodes)+len(cx.Links) != 1 {
		t.Errorf("counterexample not 1-minimal: nodes %v links %v", cx.Nodes, cx.Links)
	}
	if len(cx.UnrecoveredPairs) == 0 {
		t.Error("counterexample lists no unrecovered pairs")
	}
}

// alwaysOKChecker is a deliberately broken reliability analyzer: it
// certifies every solution. The brute-force cross-check must catch it.
type alwaysOKChecker struct{}

func (alwaysOKChecker) AnalyzeContext(ctx context.Context, gt *graph.Graph, assign *asil.Assignment, fs tsn.FlowSet) (failure.Result, error) {
	return failure.Result{OK: true, MaxOrder: 1, NBFCalls: 1}, nil
}

func TestCertifyCatchesInjectedAnalyzerBug(t *testing.T) {
	prob, sol := singleHomedFixture(t)
	c := &Certifier{Prob: prob, Sol: sol, Opt: Options{Samples: 64, Seed: 7}, Checker: alwaysOKChecker{}}
	cert, err := c.Certify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cert.OK() {
		t.Fatalf("broken analyzer slipped through:\n%s", cert.Render())
	}
	var brute *Check
	for i := range cert.Checks {
		if cert.Checks[i].Name == "brute-force" {
			brute = &cert.Checks[i]
		}
	}
	if brute == nil || brute.Status != StatusFail {
		t.Fatalf("brute-force cross-check did not fail: %+v", cert.Checks)
	}
	if !strings.Contains(brute.Detail, "DISAGREEMENT") {
		t.Errorf("detail does not flag the disagreement: %s", brute.Detail)
	}
	found := false
	for _, cx := range cert.Counterexamples {
		if cx.FoundBy == "brute-force" {
			found = true
		}
	}
	if !found {
		t.Error("no brute-force counterexample recorded")
	}
}

func TestCertifyStructureTamperStopsEarly(t *testing.T) {
	prob, sol := dualHomedFixture(t)
	// Violate the ASIL = min(endpoints) rule behind the planner's back.
	sol.Assignment.SetLink(0, 2, asil.LevelD)
	c := &Certifier{Prob: prob, Sol: sol}
	cert, err := c.Certify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cert.OK() {
		t.Fatal("tampered assignment certified")
	}
	for _, ck := range cert.Checks {
		if ck.Name == "analyzer" || ck.Name == "brute-force" || ck.Name == "monte-carlo" {
			t.Errorf("reliability stage %s ran on a structurally broken solution", ck.Name)
		}
	}
}

func TestCertifyCostMismatch(t *testing.T) {
	prob, sol := dualHomedFixture(t)
	sol.Cost += 5
	c := &Certifier{Prob: prob, Sol: sol, Opt: Options{Samples: 8, Seed: 1}}
	cert, err := c.Certify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cert.OK() {
		t.Fatal("wrong recorded cost certified")
	}
	if !cert.failed("cost") {
		t.Fatalf("cost check did not fail: %+v", cert.Checks)
	}
}

func TestCertifyCancellation(t *testing.T) {
	prob, sol := dualHomedFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Certifier{Prob: prob, Sol: sol}
	if _, err := c.Certify(ctx); err == nil {
		t.Fatal("cancelled certification returned no error")
	}
}

func TestCertifyInputValidation(t *testing.T) {
	prob, sol := dualHomedFixture(t)
	if _, err := (&Certifier{Prob: nil, Sol: sol}).Certify(context.Background()); err == nil {
		t.Error("nil problem accepted")
	}
	if _, err := (&Certifier{Prob: prob, Sol: nil}).Certify(context.Background()); err == nil {
		t.Error("nil solution accepted")
	}
	if _, err := (&Certifier{Prob: prob, Sol: &core.Solution{}}).Certify(context.Background()); err == nil {
		t.Error("empty solution accepted")
	}
}

func TestCertificateWriteIsReadableJSON(t *testing.T) {
	prob, sol := dualHomedFixture(t)
	c := &Certifier{Prob: prob, Sol: sol, Opt: Options{Samples: 16, Seed: 3}}
	cert, err := c.Certify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cert.json")
	if err := Write(path, cert); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got Certificate
	if err := serialize.ReadJSON(f, &got); err != nil {
		t.Fatal(err)
	}
	if got.Version != CertificateVersion || got.Verdict != cert.Verdict || len(got.Checks) != len(cert.Checks) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, cert)
	}
}

func TestCertifyDeterministicForSeed(t *testing.T) {
	prob, sol := dualHomedFixture(t)
	run := func() *Certificate {
		c := &Certifier{Prob: prob, Sol: sol, Opt: Options{Samples: 32, Seed: 42}}
		cert, err := c.Certify(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return cert
	}
	a, b := run(), run()
	if a.DistinctScenarios != b.DistinctScenarios || a.CoverageMass != b.CoverageMass || a.NBFCalls != b.NBFCalls {
		t.Fatalf("same seed, different campaign: %+v vs %+v", a, b)
	}
}
