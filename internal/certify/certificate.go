package certify

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/serialize"
	"repro/internal/tsn"
)

// CertificateVersion is the on-disk certificate format version.
const CertificateVersion = 1

// CheckStatus is the outcome of one audit stage.
type CheckStatus string

// The three check outcomes.
const (
	StatusPass    CheckStatus = "pass"
	StatusFail    CheckStatus = "fail"
	StatusSkipped CheckStatus = "skipped"
)

// Check records one audit stage's outcome.
type Check struct {
	Name   string      `json:"name"`
	Status CheckStatus `json:"status"`
	Detail string      `json:"detail"`
}

// LinkRef identifies a failed link in a counterexample.
type LinkRef struct {
	U     int    `json:"u"`
	V     int    `json:"v"`
	UName string `json:"uName,omitempty"`
	VName string `json:"vName,omitempty"`
}

// PairRef identifies an unrecovered (src, dst) pair.
type PairRef struct {
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	SrcName string `json:"srcName,omitempty"`
	DstName string `json:"dstName,omitempty"`
}

// Counterexample is a non-safe failure scenario the planned network does
// not survive, minimized so that removing any single component makes it
// recoverable (or drops it below the reliability goal).
type Counterexample struct {
	// Nodes and Links are the failed components.
	Nodes     []int     `json:"nodes,omitempty"`
	NodeNames []string  `json:"nodeNames,omitempty"`
	Links     []LinkRef `json:"links,omitempty"`
	// Probability is the Eq. 2 scenario probability (>= R by definition).
	Probability float64 `json:"probability"`
	// UnrecoveredPairs lists the pairs the NBF could not restore.
	UnrecoveredPairs []PairRef `json:"unrecoveredPairs,omitempty"`
	// Minimized is true when the delta-debugging pass completed (the set
	// is 1-minimal); false when it was cut short by cancellation.
	Minimized bool `json:"minimized"`
	// FoundBy names the audit stage that produced it: "analyzer",
	// "brute-force" or "monte-carlo".
	FoundBy string `json:"foundBy"`
}

// Certificate is the machine-readable audit result.
type Certificate struct {
	Version int `json:"version"`
	// Verdict is "PASS" when every executed check passed, "FAIL" otherwise.
	Verdict string  `json:"verdict"`
	Checks  []Check `json:"checks"`
	// Counterexamples holds the minimized failing scenarios (empty on PASS).
	Counterexamples []Counterexample `json:"counterexamples,omitempty"`
	// ScenariosChecked counts Monte Carlo trials drawn (including safe and
	// duplicate draws); DistinctScenarios counts unique non-safe scenarios
	// actually injected into the simulator.
	ScenariosChecked  int `json:"scenariosChecked"`
	DistinctScenarios int `json:"distinctScenarios"`
	// CoverageMass is the summed Eq. 2 probability of the distinct
	// non-safe scenarios checked; TotalNonSafeMass is the exhaustive total
	// when enumerable (0 = unknown, instance too large to enumerate).
	CoverageMass     float64 `json:"coverageMass"`
	TotalNonSafeMass float64 `json:"totalNonSafeMass,omitempty"`
	// NBFCalls counts recovery simulations across all audit stages.
	NBFCalls int `json:"nbfCalls"`
	// WallMillis is the audit wall time in milliseconds.
	WallMillis int64 `json:"wallMillis"`
	Seed       int64 `json:"seed"`
	Samples    int   `json:"samples"`
}

// OK reports whether the certificate's verdict is PASS.
func (c *Certificate) OK() bool { return c.Verdict == "PASS" }

func (c *Certificate) addCheck(name string, ck Check) {
	ck.Name = name
	c.Checks = append(c.Checks, ck)
}

func (c *Certificate) failed(name string) bool {
	for _, ck := range c.Checks {
		if ck.Name == name && ck.Status == StatusFail {
			return true
		}
	}
	return false
}

// finish seals the verdict and wall time.
func (c *Certificate) finish(start time.Time) {
	c.Verdict = "PASS"
	for _, ck := range c.Checks {
		if ck.Status == StatusFail {
			c.Verdict = "FAIL"
			break
		}
	}
	c.WallMillis = time.Since(start).Milliseconds()
}

// Render formats the certificate as a human-readable report.
func (c *Certificate) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "certificate: %s\n", c.Verdict)
	for _, ck := range c.Checks {
		fmt.Fprintf(&b, "  %-12s %-7s %s\n", ck.Name, ck.Status, ck.Detail)
	}
	if c.DistinctScenarios > 0 || c.ScenariosChecked > 0 {
		cov := fmt.Sprintf("probability mass %.3g", c.CoverageMass)
		if c.TotalNonSafeMass > 0 {
			cov = fmt.Sprintf("%.1f%% of non-safe probability mass %.3g",
				100*c.CoverageMass/c.TotalNonSafeMass, c.TotalNonSafeMass)
		}
		fmt.Fprintf(&b, "  coverage: %d distinct non-safe scenarios over %d trials, %s\n",
			c.DistinctScenarios, c.ScenariosChecked, cov)
	}
	for i, cx := range c.Counterexamples {
		min := "minimized"
		if !cx.Minimized {
			min = "not minimized"
		}
		fmt.Fprintf(&b, "  counterexample %d (%s, %s, p=%.3g):", i+1, cx.FoundBy, min, cx.Probability)
		for j, n := range cx.Nodes {
			name := fmt.Sprintf("%d", n)
			if j < len(cx.NodeNames) && cx.NodeNames[j] != "" {
				name = cx.NodeNames[j]
			}
			fmt.Fprintf(&b, " %s", name)
		}
		for _, l := range cx.Links {
			u, v := l.UName, l.VName
			if u == "" {
				u = fmt.Sprintf("%d", l.U)
			}
			if v == "" {
				v = fmt.Sprintf("%d", l.V)
			}
			fmt.Fprintf(&b, " %s--%s", u, v)
		}
		if len(cx.UnrecoveredPairs) > 0 {
			fmt.Fprintf(&b, " -> unrecovered")
			for _, p := range cx.UnrecoveredPairs {
				s, d := p.SrcName, p.DstName
				if s == "" {
					s = fmt.Sprintf("%d", p.Src)
				}
				if d == "" {
					d = fmt.Sprintf("%d", p.Dst)
				}
				fmt.Fprintf(&b, " %s->%s", s, d)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  effort: %d NBF calls, %d ms\n", c.NBFCalls, c.WallMillis)
	return b.String()
}

// Write persists the certificate as indented JSON, atomically (temp file +
// rename), so a crash mid-write never leaves a truncated certificate that
// could be mistaken for a verdict.
func Write(path string, cert *Certificate) error {
	return serialize.WriteFileAtomic(path, func(w io.Writer) error {
		return serialize.WriteJSON(w, cert)
	})
}

// newCounterexample builds a named, sorted counterexample from a failed
// component set and the pairs its recovery left unrestored.
func (c *Certifier) newCounterexample(set []component, prob float64, er []tsn.Pair, minimized bool, foundBy string) Counterexample {
	cx := Counterexample{Probability: prob, Minimized: minimized, FoundBy: foundBy}
	var nodes []int
	var links []graph.Edge
	for _, comp := range set {
		if comp.isLink {
			links = append(links, comp.edge)
		} else {
			nodes = append(nodes, comp.node)
		}
	}
	sort.Ints(nodes)
	sort.Slice(links, func(i, j int) bool {
		if links[i].U != links[j].U {
			return links[i].U < links[j].U
		}
		return links[i].V < links[j].V
	})
	name := func(id int) string {
		if v, err := c.Prob.Connections.Vertex(id); err == nil {
			return v.Name
		}
		return ""
	}
	for _, n := range nodes {
		cx.Nodes = append(cx.Nodes, n)
		cx.NodeNames = append(cx.NodeNames, name(n))
	}
	for _, l := range links {
		cx.Links = append(cx.Links, LinkRef{U: l.U, V: l.V, UName: name(l.U), VName: name(l.V)})
	}
	for _, p := range er {
		cx.UnrecoveredPairs = append(cx.UnrecoveredPairs, PairRef{Src: p.Src, Dst: p.Dst, SrcName: name(p.Src), DstName: name(p.Dst)})
	}
	return cx
}
