// Package zoo is the pretrained-policy store behind the serving fast
// path: policies trained across scenarios.Families are persisted under a
// checksummed manifest, keyed by the network geometry their weights were
// shaped for and a problem-feature vector for nearest-neighbour lookup.
// At serve time a matching policy is rolled out greedily — no PPO — and
// the certifier decides whether the transferred plan is trustworthy.
package zoo

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/serialize"
)

// Geometry pins every dimension the GCN+MLP weight shapes depend on: a
// policy's weights import only into networks built for the exact same
// geometry, so zoo lookup filters on Geometry equality before ranking by
// feature distance.
type Geometry struct {
	Vertices         int   `json:"vertices"`
	FeatureDim       int   `json:"featureDim"`
	ParamDim         int   `json:"paramDim"`
	ActionSpace      int   `json:"actionSpace"`
	GCNLayers        int   `json:"gcnLayers"`
	GCNHidden        int   `json:"gcnHidden"`
	EmbeddingPerNode int   `json:"embeddingPerNode"`
	MLPHidden        []int `json:"mlpHidden"`
	K                int   `json:"k"`
	PerFlow          bool  `json:"perFlow,omitempty"`
	UseGAT           bool  `json:"useGat,omitempty"`
}

// Key canonicalizes the geometry into a digest string, the zoo's exact-
// match index key.
func (g Geometry) Key() string {
	d := failure.NewDigest()
	d.Str("nptsn-zoo-geometry-v1")
	d.Int(g.Vertices)
	d.Int(g.FeatureDim)
	d.Int(g.ParamDim)
	d.Int(g.ActionSpace)
	d.Int(g.GCNLayers)
	d.Int(g.GCNHidden)
	d.Int(g.EmbeddingPerNode)
	d.Int(len(g.MLPHidden))
	for _, h := range g.MLPHidden {
		d.Int(h)
	}
	d.Int(g.K)
	d.Bool(g.PerFlow)
	d.Bool(g.UseGAT)
	return d.Sum()
}

// GeometryOf derives the weight geometry a (problem, config) pair induces,
// by building the same SOAG and encoder the planner would.
func GeometryOf(prob *core.Problem, cfg core.Config) (Geometry, error) {
	soag, err := core.NewSOAG(prob, cfg.K)
	if err != nil {
		return Geometry{}, fmt.Errorf("zoo: geometry: %w", err)
	}
	enc := core.NewEncoderWithOptions(prob, cfg.K, cfg.PerFlowEncoding)
	return Geometry{
		Vertices:         prob.NumVertices(),
		FeatureDim:       enc.FeatureDim(),
		ParamDim:         enc.ParamDim(),
		ActionSpace:      soag.ActionSpaceSize(),
		GCNLayers:        cfg.GCNLayers,
		GCNHidden:        cfg.GCNHidden,
		EmbeddingPerNode: cfg.EmbeddingPerNode,
		MLPHidden:        append([]int(nil), cfg.MLPHidden...),
		K:                cfg.K,
		PerFlow:          cfg.PerFlowEncoding,
		UseGAT:           cfg.UseGAT,
	}, nil
}

// Features is the problem-feature vector a zoo lookup ranks candidates by:
// instance sizes, the reliability goal, and a topology-family signature.
// Two problems with equal Geometry can still differ here (a ring and a
// mesh with the same node counts induce the same weight shapes), which is
// exactly what the distance metric arbitrates.
type Features struct {
	EndStations     int     `json:"endStations"`
	Switches        int     `json:"switches"`
	Links           int     `json:"links"`
	Flows           int     `json:"flows"`
	ReliabilityGoal float64 `json:"reliabilityGoal"`
	// Topology is a failure.Digest over the connection graph's shape —
	// vertex kinds in ID order plus edge endpoints, deliberately blind to
	// cable lengths and names — so instances of one scenario family share
	// a signature across parameterizations that keep the wiring.
	Topology string `json:"topology"`
}

// FeaturesOf extracts the lookup features of a problem.
func FeaturesOf(prob *core.Problem) Features {
	g := serialize.EncodeGraph(prob.Connections)
	d := failure.NewDigest()
	d.Str("nptsn-zoo-topology-v1")
	d.Int(len(g.Vertices))
	for _, v := range g.Vertices {
		d.Int(v.ID)
		d.Str(v.Kind)
	}
	d.Int(len(g.Edges))
	for _, e := range g.Edges {
		d.Int(e.U)
		d.Int(e.V)
	}
	return Features{
		EndStations:     len(prob.EndStations()),
		Switches:        len(prob.Switches()),
		Links:           len(prob.Connections.Edges()),
		Flows:           len(prob.Flows),
		ReliabilityGoal: prob.ReliabilityGoal,
		Topology:        d.Sum(),
	}
}

// topologyMismatchPenalty dominates every size term, so a same-family
// policy always outranks a foreign-family one, while a foreign family
// remains reachable when it is the only geometry-compatible candidate.
const topologyMismatchPenalty = 16

// Distance is the lookup metric between two feature vectors: relative
// differences of the size terms, the absolute reliability-goal gap, and a
// fixed penalty for a topology-signature mismatch. Zero means the
// instances are indistinguishable to the zoo.
func (f Features) Distance(o Features) float64 {
	sum := relDiff(f.EndStations, o.EndStations) +
		relDiff(f.Switches, o.Switches) +
		relDiff(f.Links, o.Links) +
		relDiff(f.Flows, o.Flows) +
		math.Abs(f.ReliabilityGoal-o.ReliabilityGoal)
	if f.Topology != o.Topology {
		sum += topologyMismatchPenalty
	}
	return sum
}

// relDiff is |a-b| normalized by the larger magnitude, in [0, 1].
func relDiff(a, b int) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
	return math.Abs(float64(a)-float64(b)) / den
}
