package zoo

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/raceflag"
	"repro/internal/serialize"
)

// solutionBytes canonicalizes a solution for bit-identity comparison.
func solutionBytes(t testing.TB, sol *core.Solution) []byte {
	t.Helper()
	if sol == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := serialize.WriteJSON(&buf, serialize.EncodeSolution(sol)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRolloutDeterministicAcrossWorkersAndBatching is the differential
// suite behind the rollout's contract: the same policy and spec must
// produce a bit-identical plan whatever the worker count, and whether
// observations are batched through ForwardPolicyValueBatch or evaluated
// one forward at a time.
func TestRolloutDeterministicAcrossWorkersAndBatching(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyCfg()
	weights := trainedWeights(t)
	const streams = 4

	type variant struct {
		workers   int
		unbatched bool
	}
	var variants []variant
	for _, w := range []int{1, 2, 4} {
		variants = append(variants, variant{w, false}, variant{w, true})
	}

	var refSol []byte
	var refStats RolloutStats
	for i, v := range variants {
		sol, stats, err := Rollout(context.Background(), prob, cfg, weights, RolloutOptions{
			Streams:   streams,
			Workers:   v.workers,
			Unbatched: v.unbatched,
		})
		if err != nil {
			t.Fatalf("workers=%d unbatched=%v: %v", v.workers, v.unbatched, err)
		}
		if sol == nil {
			t.Fatalf("workers=%d unbatched=%v: rollout found no plan", v.workers, v.unbatched)
		}
		got := solutionBytes(t, sol)
		if i == 0 {
			refSol, refStats = got, stats
			continue
		}
		if !bytes.Equal(got, refSol) {
			t.Errorf("workers=%d unbatched=%v: plan differs from workers=%d unbatched=%v reference",
				v.workers, v.unbatched, variants[0].workers, variants[0].unbatched)
		}
		if stats != refStats {
			t.Errorf("workers=%d unbatched=%v: stats %+v, reference %+v", v.workers, v.unbatched, stats, refStats)
		}
	}
}

// TestRolloutReproducible re-runs the same rollout end to end: repeated
// invocations must spend exactly the same work.
func TestRolloutReproducible(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyCfg()
	weights := trainedWeights(t)
	_, statsA, err := Rollout(context.Background(), prob, cfg, weights, RolloutOptions{Streams: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, statsB, err := Rollout(context.Background(), prob, cfg, weights, RolloutOptions{Streams: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if statsA != statsB {
		t.Fatalf("same seed diverged: %+v vs %+v", statsA, statsB)
	}
}

// TestRolloutRejectsForeignGeometry pins the error path the service's
// fallback chain depends on: weights shaped for another geometry must be
// refused, not silently misapplied.
func TestRolloutRejectsForeignGeometry(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyCfg()
	_, _, err := Rollout(context.Background(), prob, cfg, [][]float64{{1, 2, 3}}, RolloutOptions{})
	if err == nil {
		t.Fatal("foreign-geometry weights accepted")
	}
}

// TestGreedyActionAllocFree guards the rollout hot path: action selection
// runs once per environment step per stream and must not allocate.
func TestGreedyActionAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	logits := []float64{0.3, -1.2, 2.5, 0.0, -0.4, 1.1}
	mask := []bool{true, false, true, true, false, true}
	var got int
	if n := testing.AllocsPerRun(100, func() {
		got = greedyAction(logits, mask)
	}); n != 0 {
		t.Errorf("greedyAction: %v allocs/op in steady state, want 0", n)
	}
	if got != 2 {
		t.Fatalf("greedyAction picked %d, want 2", got)
	}
}

func TestGreedyActionRules(t *testing.T) {
	cases := []struct {
		logits []float64
		mask   []bool
		want   int
	}{
		{[]float64{5, 1, 2}, []bool{false, true, true}, 2},    // masked max skipped
		{[]float64{1, 1, 1}, []bool{true, true, true}, 0},     // lowest index wins ties
		{[]float64{3, 9, 4}, []bool{false, false, false}, -1}, // all masked
		{[]float64{-2, -1}, []bool{true, true}, 1},            // negatives compare correctly
	}
	for i, c := range cases {
		if got := greedyAction(c.logits, c.mask); got != c.want {
			t.Errorf("case %d: got %d, want %d", i, got, c.want)
		}
	}
}

// TestRolloutStreamSeedsFollowPlannerSchedule pins the seed schedule to
// the planner's worker-env layout, so a zoo rollout explores the same
// environment sequence a training run with the same seed would.
func TestRolloutStreamSeedsFollowPlannerSchedule(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyCfg()
	weights := trainedWeights(t)
	// Stream 0 with base seed 5 must equal stream 0 with Seed option 5:
	// the option only offsets the base, not the schedule.
	solA, _, err := Rollout(context.Background(), prob, cfg, weights, RolloutOptions{Streams: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Seed = 5
	solB, _, err := Rollout(context.Background(), prob, cfg2, weights, RolloutOptions{Streams: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := solutionBytes(t, solA), solutionBytes(t, solB)
	if !bytes.Equal(a, b) {
		t.Fatal("explicit Seed option and config seed produced different plans")
	}
}

func BenchmarkGreedyAction(b *testing.B) {
	logits := make([]float64, 64)
	mask := make([]bool, 64)
	for i := range logits {
		logits[i] = float64((i * 7919) % 97)
		mask[i] = i%3 != 0
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if greedyAction(logits, mask) < 0 {
			b.Fatal("unexpected all-masked")
		}
	}
}

// Example of the rollout's cost accounting used in docs; keeps the stats
// fields exercised under `go vet`-style example checking.
func ExampleRolloutStats() {
	s := RolloutStats{Streams: 4, Solved: 4, EnvSteps: 44}
	fmt.Printf("%d/%d streams solved in %d env steps\n", s.Solved, s.Streams, s.EnvSteps)
	// Output: 4/4 streams solved in 44 env steps
}
