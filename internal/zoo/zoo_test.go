package zoo

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// tinyProblem is the zoo tests' problem fixture: 4 end stations, 2
// optional switches, full ES-SW plus SW-SW candidate links, 3 unicast
// flows — the same shape internal/core and internal/service train on in
// milliseconds.
func tinyProblem(t testing.TB) *core.Problem {
	t.Helper()
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	for i := 0; i < 2; i++ {
		g.AddVertex("", graph.KindSwitch)
	}
	for es := 0; es < 4; es++ {
		for sw := 4; sw < 6; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.AddEdge(4, 5, 1); err != nil {
		t.Fatal(err)
	}
	net := tsn.DefaultNetwork()
	mkFlow := func(id, src, dst int) tsn.Flow {
		return tsn.Flow{ID: id, Src: src, Dsts: []int{dst}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}
	}
	prob := &core.Problem{
		Connections:     g,
		Net:             net,
		Flows:           tsn.FlowSet{mkFlow(0, 0, 1), mkFlow(1, 2, 3), mkFlow(2, 1, 2)},
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
	if err := prob.Validate(); err != nil {
		t.Fatalf("tiny problem invalid: %v", err)
	}
	return prob
}

// tinyCfg is a milliseconds-scale training budget matched to tinyProblem.
func tinyCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxEpoch = 2
	cfg.MaxStep = 24
	cfg.K = 4
	cfg.MLPHidden = []int{16, 16}
	cfg.GCNLayers = 1
	cfg.AnalyzerCacheSize = 1024
	cfg.Seed = 11
	return cfg
}

// trainedWeights trains one tiny policy and memoizes it: several tests
// need real, rollout-capable weights and training twice buys nothing.
var trainedOnce struct {
	sync.Once
	weights [][]float64
	err     error
}

func trainedWeights(t testing.TB) [][]float64 {
	t.Helper()
	trainedOnce.Do(func() {
		pl, err := core.NewPlanner(tinyProblem(t), tinyCfg())
		if err != nil {
			trainedOnce.err = err
			return
		}
		report, err := pl.Plan()
		if err != nil {
			trainedOnce.err = err
			return
		}
		if report.Best == nil {
			trainedOnce.err = errNoPlan
			return
		}
		trainedOnce.weights = report.FinalWeights
	})
	if trainedOnce.err != nil {
		t.Fatalf("training the fixture policy: %v", trainedOnce.err)
	}
	return trainedOnce.weights
}

var errNoPlan = &noPlanError{}

type noPlanError struct{}

func (*noPlanError) Error() string { return "fixture training found no plan; raise the budget" }

// fakeEntry builds a manifest entry with a distinctive fabricated geometry
// and features — store tests don't need real networks.
func fakeEntry(name string, vertices, flows int) (Entry, [][]float64) {
	e := Entry{
		Name: name,
		Geometry: Geometry{
			Vertices: vertices, FeatureDim: 7, ParamDim: 10, ActionSpace: 6,
			GCNLayers: 2, GCNHidden: 8, EmbeddingPerNode: 2, MLPHidden: []int{16, 16}, K: 4,
		},
		Features: Features{
			EndStations: vertices - 2, Switches: 2, Links: 9, Flows: flows,
			ReliabilityGoal: 1e-6, Topology: "t-" + name,
		},
		TrainedEpochs: 3,
		BestCost:      42,
		CreatedAtUnix: 1700000000,
	}
	w := [][]float64{{float64(vertices), float64(flows)}, {0.5}}
	return e, w
}

func TestZooAddPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	z, quarantined, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 0 || z.Len() != 0 {
		t.Fatalf("fresh dir: quarantined=%v len=%d", quarantined, z.Len())
	}
	e, w := fakeEntry("ring-4es-3sw", 7, 4)
	stored, err := z.Add(e, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored.ID) != 32 {
		t.Fatalf("entry ID %q, want 32 hex digits", stored.ID)
	}

	// A second process opening the same directory sees the policy.
	z2, quarantined, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 0 {
		t.Fatalf("reopen quarantined %v", quarantined)
	}
	if z2.Len() != 1 {
		t.Fatalf("reopen: %d policies, want 1", z2.Len())
	}
	m, ok := z2.Lookup(e.Geometry, e.Features)
	if !ok {
		t.Fatal("lookup missed the stored policy")
	}
	if m.Entry.ID != stored.ID || m.Distance != 0 {
		t.Fatalf("lookup got %s at distance %v", m.Entry.ID, m.Distance)
	}
	if len(m.Weights) != 2 || m.Weights[0][0] != 7 {
		t.Fatalf("weights did not round-trip: %v", m.Weights)
	}
}

func TestZooAddIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	z, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, w := fakeEntry("mesh-4es-2sw", 6, 3)
	a, err := z.Add(e, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := z.Add(e, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("same content produced IDs %s and %s", a.ID, b.ID)
	}
	if z.Len() != 1 {
		t.Fatalf("%d entries after double add, want 1", z.Len())
	}
}

func TestZooLookupFiltersGeometryAndRanksByDistance(t *testing.T) {
	dir := t.TempDir()
	z, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	near, nearW := fakeEntry("near", 7, 4)
	far, farW := fakeEntry("far", 7, 4)
	far.Features.Flows = 40 // same geometry, distant features
	foreign, foreignW := fakeEntry("foreign", 9, 4)
	foreign.Features = near.Features // identical features, incompatible shapes
	for _, add := range []struct {
		e Entry
		w [][]float64
	}{{near, nearW}, {far, farW}, {foreign, foreignW}} {
		if _, err := z.Add(add.e, add.w); err != nil {
			t.Fatal(err)
		}
	}

	m, ok := z.Lookup(near.Geometry, near.Features)
	if !ok {
		t.Fatal("lookup missed")
	}
	if m.Entry.Name != "near" {
		t.Fatalf("lookup chose %q, want the nearest same-geometry entry", m.Entry.Name)
	}
	// A geometry with no entries at all must miss, even with feature-
	// identical entries of other shapes present.
	empty := near.Geometry
	empty.K = 99
	if _, ok := z.Lookup(empty, near.Features); ok {
		t.Fatal("lookup matched across incompatible geometry")
	}
}

func TestZooTopologyMismatchDominatesSizeTerms(t *testing.T) {
	// Same family at a different size must outrank a foreign family at the
	// exact size: the penalty dominates every normalized size term.
	query := Features{EndStations: 6, Switches: 3, Links: 20, Flows: 8, ReliabilityGoal: 1e-6, Topology: "ring"}
	sameFamily := Features{EndStations: 4, Switches: 3, Links: 14, Flows: 4, ReliabilityGoal: 1e-6, Topology: "ring"}
	foreign := query
	foreign.Topology = "mesh"
	if d1, d2 := query.Distance(sameFamily), query.Distance(foreign); d1 >= d2 {
		t.Fatalf("same-family distance %v >= foreign-family %v", d1, d2)
	}
}

func TestZooQuarantinesCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{ not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	z, quarantined, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt manifest must not fail open: %v", err)
	}
	if z.Len() != 0 {
		t.Fatalf("corrupt manifest yielded %d entries", z.Len())
	}
	if len(quarantined) != 1 || !strings.HasPrefix(quarantined[0], manifestName+":") {
		t.Fatalf("quarantined = %v", quarantined)
	}
	if _, err := os.Stat(filepath.Join(dir, corruptDirName, manifestName)); err != nil {
		t.Fatalf("manifest not moved to corrupt/: %v", err)
	}
	// The zoo stays writable after quarantining: Add starts a new manifest.
	e, w := fakeEntry("recovered", 7, 4)
	if _, err := z.Add(e, w); err != nil {
		t.Fatal(err)
	}
	if z.Len() != 1 {
		t.Fatalf("add after quarantine: %d entries", z.Len())
	}
}

func TestZooQuarantinesCorruptPolicy(t *testing.T) {
	dir := t.TempDir()
	z, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep, keepW := fakeEntry("keep", 7, 4)
	if _, err := z.Add(keep, keepW); err != nil {
		t.Fatal(err)
	}
	bad, badW := fakeEntry("bad", 7, 9)
	stored, err := z.Add(bad, badW)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: flip a byte inside the stored policy file.
	path := filepath.Join(dir, policiesDir, stored.ID+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	quarantined, err := z.Reload()
	if err != nil {
		t.Fatalf("corrupt policy must not fail reload: %v", err)
	}
	if len(quarantined) != 1 || !strings.Contains(quarantined[0], stored.ID) {
		t.Fatalf("quarantined = %v", quarantined)
	}
	if z.Len() != 1 {
		t.Fatalf("%d entries survived, want the 1 healthy one", z.Len())
	}
	if m, ok := z.Lookup(keep.Geometry, keep.Features); !ok || m.Entry.Name != "keep" {
		t.Fatalf("healthy entry lost: ok=%v", ok)
	}
	if _, err := os.Stat(filepath.Join(dir, policiesDir, corruptDirName, stored.ID+".json")); err != nil {
		t.Fatalf("policy not moved to corrupt/: %v", err)
	}
}

func TestZooQuarantinesMissingPolicyFile(t *testing.T) {
	dir := t.TempDir()
	z, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, w := fakeEntry("vanishing", 7, 4)
	stored, err := z.Add(e, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, policiesDir, stored.ID+".json")); err != nil {
		t.Fatal(err)
	}
	quarantined, err := z.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() != 0 || len(quarantined) != 1 {
		t.Fatalf("len=%d quarantined=%v", z.Len(), quarantined)
	}
}

func TestGeometryOfMatchesTrainedShapes(t *testing.T) {
	// The geometry derived from (problem, config) must accept the weights
	// training under that config produced — the invariant zoo lookups and
	// rollouts rest on.
	prob := tinyProblem(t)
	cfg := tinyCfg()
	geo, err := GeometryOf(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if geo.Vertices != 6 || geo.K != cfg.K || geo.ActionSpace != 2+cfg.K {
		t.Fatalf("geometry %+v", geo)
	}
	weights := trainedWeights(t)
	dir := t.TempDir()
	z, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.Add(Entry{Name: "tiny", Geometry: geo, Features: FeaturesOf(prob)}, weights); err != nil {
		t.Fatal(err)
	}
	m, ok := z.Lookup(geo, FeaturesOf(prob))
	if !ok || m.Distance != 0 {
		t.Fatalf("self lookup: ok=%v distance=%v", ok, m.Distance)
	}
}
