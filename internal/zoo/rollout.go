package zoo

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/failure"
)

// RolloutOptions tunes the inference-only rollout.
type RolloutOptions struct {
	// Streams is the number of independent greedy construction attempts,
	// each from its own deterministically seeded environment (default 1).
	// More streams buy robustness against a single unlucky construction
	// order at pure-inference cost.
	Streams int
	// MaxSteps is the per-stream environment step budget (default: the
	// config's MaxStep, else 256).
	MaxSteps int
	// Workers bounds rollout concurrency; streams are partitioned
	// round-robin, so the per-stream trajectory — and hence the returned
	// plan — is bit-identical for every worker count (default 1).
	Workers int
	// Unbatched evaluates each observation on its own forward call instead
	// of batching a worker's live streams; trajectories are identical
	// either way (the differential suite asserts it).
	Unbatched bool
	// Seed offsets the stream environment seeds; zero uses the config's.
	Seed int64
}

// RolloutStats reports what a rollout spent and found.
type RolloutStats struct {
	// Streams is the number of attempts run, Solved how many found a
	// guarantee-satisfying plan.
	Streams, Solved int
	// EnvSteps is the total environment steps across all streams — the
	// inference cost that replaces training.
	EnvSteps int
}

// stream is one greedy construction attempt.
type stream struct {
	idx   int
	env   *core.Env
	steps int
	done  bool
}

// Rollout runs a pretrained policy greedily — masked argmax, no PPO, no
// gradient work — over Streams independent environments and returns the
// cheapest solution found (nil when no stream solved). The caller owns
// certification: a zoo policy's plan is a *candidate* until the certifier
// accepts it.
//
// Determinism: stream s always runs in an environment seeded
// opt.Seed + s*104729 + 2 (the planner's worker-env schedule), actions are
// argmax with lowest-index tie-break, and the global winner is the lowest
// cost with the lowest stream index as tie-break — so the returned plan is
// bit-identical across worker counts and batched vs unbatched forwards.
func Rollout(ctx context.Context, prob *core.Problem, cfg core.Config, weights [][]float64, opt RolloutOptions) (*core.Solution, RolloutStats, error) {
	if opt.Streams <= 0 {
		opt.Streams = 1
	}
	if opt.MaxSteps <= 0 {
		if cfg.MaxStep > 0 {
			opt.MaxSteps = cfg.MaxStep
		} else {
			opt.MaxSteps = 256
		}
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.Workers > opt.Streams {
		opt.Workers = opt.Streams
	}
	if opt.Seed == 0 {
		opt.Seed = cfg.Seed
	}

	// One shared verdict cache across streams: hits return exactly what
	// the simulation would recompute, so sharing never changes a
	// trajectory (the same contract the planner relies on).
	cache := cfg.SharedAnalyzerCache
	if cache == nil && cfg.AnalyzerCacheSize > 0 {
		cache = failure.NewCache(cfg.AnalyzerCacheSize)
	}

	streams := make([]*stream, opt.Streams)
	for s := range streams {
		env, err := core.NewEnvWithCache(prob, cfg, opt.Seed+int64(s)*104729+2, cache)
		if err != nil {
			return nil, RolloutStats{}, fmt.Errorf("zoo: rollout env: %w", err)
		}
		streams[s] = &stream{idx: s, env: env}
	}

	// Per-worker network replicas: the Nets forward scratch is not
	// goroutine-safe, and each replica imports the same weights, so every
	// worker computes identical logits for identical observations.
	makeNets := func() (*core.Nets, error) {
		soag, err := core.NewSOAG(prob, cfg.K)
		if err != nil {
			return nil, err
		}
		enc := core.NewEncoderWithOptions(prob, cfg.K, cfg.PerFlowEncoding)
		nets, err := core.NewNets(rand.New(rand.NewSource(cfg.Seed)), enc, soag.ActionSpaceSize(), cfg)
		if err != nil {
			return nil, err
		}
		if err := nets.ImportWeights(weights); err != nil {
			return nil, fmt.Errorf("geometry mismatch: %w", err)
		}
		return nets, nil
	}

	errs := make([]error, opt.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		var owned []*stream
		for s := w; s < opt.Streams; s += opt.Workers {
			owned = append(owned, streams[s])
		}
		wg.Add(1)
		go func(w int, owned []*stream) {
			defer wg.Done()
			nets, err := makeNets()
			if err != nil {
				errs[w] = fmt.Errorf("zoo: rollout nets: %w", err)
				return
			}
			errs[w] = runStreams(ctx, nets, owned, opt.MaxSteps, !opt.Unbatched)
		}(w, owned)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, RolloutStats{}, err
		}
	}

	stats := RolloutStats{Streams: opt.Streams}
	var best *core.Solution
	for _, s := range streams {
		stats.EnvSteps += s.steps
		sol := s.env.Best()
		if sol == nil {
			continue
		}
		stats.Solved++
		// Lowest cost wins; the loop's ascending stream order makes the
		// lowest stream index the tie-break.
		if best == nil || sol.Cost < best.Cost {
			best = sol
		}
	}
	return best, stats, nil
}

// runStreams drives one worker's streams to completion. In batched mode
// the live streams advance in lockstep through one ForwardPolicyValueBatch
// per step; row i of the batch is bit-identical to a single forward of
// obs[i], so batching never changes a stream's trajectory.
func runStreams(ctx context.Context, nets *core.Nets, streams []*stream, maxSteps int, batched bool) error {
	n := len(streams)
	obs := make([]*core.Obs, 0, n)
	live := make([]*stream, 0, n)
	logits := make([][]float64, n)
	for i := range logits {
		logits[i] = make([]float64, nets.ActionSpace())
	}
	values := make([]float64, n)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		obs, live = obs[:0], live[:0]
		for _, s := range streams {
			if !s.done {
				live = append(live, s)
				obs = append(obs, s.env.Observation())
			}
		}
		if len(live) == 0 {
			return nil
		}
		if batched {
			nets.ForwardPolicyValueBatch(obs, logits[:len(live)], values[:len(live)])
		} else {
			for i := range live {
				// ForwardPolicy returns borrowed scratch; copy before the
				// next forward overwrites it.
				copy(logits[i], nets.ForwardPolicy(obs[i]))
			}
		}
		for i, s := range live {
			action := greedyAction(logits[i], s.env.Mask())
			if action < 0 {
				// No valid action from this state: the attempt is spent.
				s.done = true
				continue
			}
			_, outcome, err := s.env.StepContext(ctx, action)
			if err != nil {
				return err
			}
			s.steps++
			// The first recorded solution ends the stream — greedy
			// reconstruction is deterministic, so further budget would
			// retrace the same path.
			if outcome == core.OutcomeSolved || s.steps >= maxSteps {
				s.done = true
			}
		}
	}
}

// greedyAction is the rollout's action rule: argmax over unmasked logits
// with the lowest index winning ties, -1 when everything is masked. It is
// the hot-path kernel the alloc guard covers — no allocation, no bounds
// surprises.
func greedyAction(logits []float64, mask []bool) int {
	best := -1
	var bestV float64
	for i, ok := range mask {
		if !ok {
			continue
		}
		if best < 0 || logits[i] > bestV {
			best, bestV = i, logits[i]
		}
	}
	return best
}
