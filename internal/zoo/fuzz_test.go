package zoo

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serialize"
)

// FuzzZooManifest feeds arbitrary bytes through the zoo's two untrusted
// decode paths — the manifest and a manifest-referenced policy file. A
// zoo directory is writable by operators and shared between replicas, so
// corrupt, truncated or adversarial files of any shape must come back as
// quarantine decisions, never as a panic or a failed boot.
func FuzzZooManifest(f *testing.F) {
	// Seed with a structurally valid manifest so the fuzzer starts from
	// the interesting region of the input space rather than pure noise.
	id := strings.Repeat("ab", 16)
	valid := manifest{Entries: []Entry{{
		ID:   id,
		Name: "seed",
		Geometry: Geometry{Vertices: 6, FeatureDim: 7, ParamDim: 10, ActionSpace: 6,
			GCNLayers: 1, GCNHidden: 8, EmbeddingPerNode: 2, MLPHidden: []int{16, 16}, K: 4},
		Features: Features{EndStations: 4, Switches: 2, Links: 9, Flows: 3, ReliabilityGoal: 1e-6, Topology: "t"},
	}}}
	var buf bytes.Buffer
	if err := serialize.WriteEnvelope(&buf, manifestDomain, manifestVersion, valid); err != nil {
		f.Fatal(err)
	}
	manifestBytes := buf.Bytes()
	f.Add(manifestBytes)

	var pbuf bytes.Buffer
	if err := serialize.WriteEnvelope(&pbuf, policyDomain, policyVersion,
		policyRecord{ID: id, Weights: [][]float64{{1, 2}, {3}}}); err != nil {
		f.Fatal(err)
	}
	f.Add(pbuf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"sum":"00","payload":{}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	// Two reusable zoo directories per worker process: one where the fuzz
	// input plays the manifest, one where it plays the policy file a valid
	// manifest references. Open may quarantine (rename) the input file;
	// the next exec simply rewrites it.
	manifestDir := f.TempDir()
	policyDir := f.TempDir()
	if err := os.MkdirAll(filepath.Join(policyDir, policiesDir), 0o755); err != nil {
		f.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(policyDir, manifestName), manifestBytes, 0o644); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(filepath.Join(manifestDir, manifestName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		z, _, err := Open(manifestDir)
		if err != nil {
			t.Fatalf("corrupt manifest failed open instead of quarantining: %v", err)
		}
		// Whatever decoded must be internally consistent: every surviving
		// entry has resident weights.
		for _, e := range z.Entries() {
			if m, ok := z.Lookup(e.Geometry, e.Features); ok && len(m.Weights) == 0 {
				t.Fatalf("entry %s survived without weights", e.ID)
			}
		}

		// Same bytes as the policy file behind a healthy manifest. Open
		// quarantines the manifest only when the policy fails, so restore
		// the manifest for the next exec if it was moved.
		if err := os.WriteFile(filepath.Join(policyDir, policiesDir, id+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(policyDir); err != nil {
			t.Fatalf("corrupt policy failed open instead of quarantining: %v", err)
		}
		if err := os.WriteFile(filepath.Join(policyDir, manifestName), manifestBytes, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}
