package zoo

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"repro/internal/failure"
	"repro/internal/serialize"
)

// On-disk layout of a zoo directory:
//
//	manifest.json          — checksummed envelope over the entry index
//	policies/<id>.json     — checksummed envelope over one weight snapshot
//	corrupt/               — quarantined files that failed to decode
//
// Both file kinds reuse the serialize envelope discipline (version +
// content digest over the compact payload, atomic rename on write), so a
// shared zoo directory can be read by many replicas and re-read on SIGHUP
// without ever observing a half-written file.
const (
	manifestVersion = 1
	policyVersion   = 1

	manifestDomain = "nptsn-zoo-manifest-v1"
	policyDomain   = "nptsn-zoo-policy-v1"

	manifestName   = "manifest.json"
	policiesDir    = "policies"
	corruptDirName = "corrupt"
)

// Entry is one pretrained policy in the manifest.
type Entry struct {
	// ID names the policy file (policies/<id>.json); 32 hex digits derived
	// from the geometry, features and weights at Add time.
	ID string `json:"id"`
	// Name is the human-readable provenance, typically the scenario name
	// the policy was trained on ("ring-6es-3sw").
	Name string `json:"name"`
	// Geometry pins the weight shapes; lookups filter on its Key.
	Geometry Geometry `json:"geometry"`
	// Features locates the training instance for nearest-neighbour
	// ranking.
	Features Features `json:"features"`
	// TrainedEpochs and BestCost record how the policy was produced.
	TrainedEpochs int     `json:"trainedEpochs"`
	BestCost      float64 `json:"bestCost"`
	// CreatedAtUnix is the Add time in Unix seconds.
	CreatedAtUnix int64 `json:"createdAtUnix"`
}

// manifest is the payload inside manifest.json's envelope.
type manifest struct {
	Entries []Entry `json:"entries"`
}

// policyRecord is the payload inside a policy file's envelope.
type policyRecord struct {
	ID      string      `json:"id"`
	Weights [][]float64 `json:"weights"`
}

var policyNameRE = regexp.MustCompile(`^[0-9a-f]{32}\.json$`)

// Match is a successful zoo lookup: the chosen entry, its weights (shared,
// callers must not mutate) and its feature distance to the query.
type Match struct {
	Entry    Entry
	Weights  [][]float64
	Distance float64
}

// Zoo is an in-memory view of a zoo directory: the manifest entries whose
// policy files decoded cleanly, with their weights resident. It is safe
// for concurrent Lookup/Add/Reload — replicas share one directory and
// re-read it on SIGHUP.
type Zoo struct {
	dir string

	mu      sync.RWMutex
	entries []Entry
	weights map[string][][]float64
}

// Open reads (or initializes) a zoo directory. Corrupt files — torn
// writes caught by the envelope checksum, truncated JSON, foreign files,
// manifest entries whose policy file is missing or undecodable — are
// moved into corrupt/ and reported in quarantined ("name: reason" lines);
// they never fail the open, because one bad file must not take a booting
// server down.
func Open(dir string) (*Zoo, []string, error) {
	z := &Zoo{dir: dir}
	quarantined, err := z.Reload()
	if err != nil {
		return nil, nil, err
	}
	return z, quarantined, nil
}

// Dir returns the zoo's directory.
func (z *Zoo) Dir() string { return z.dir }

// Len returns the number of usable policies.
func (z *Zoo) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.entries)
}

// Entries returns a copy of the usable manifest entries.
func (z *Zoo) Entries() []Entry {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return append([]Entry(nil), z.entries...)
}

// Reload re-reads the manifest and every referenced policy file from
// disk, replacing the in-memory view — the SIGHUP/boot path that lets
// replicas pick up a repopulated shared zoo. Undecodable files are
// quarantined and reported, exactly like Open.
func (z *Zoo) Reload() ([]string, error) {
	if err := os.MkdirAll(filepath.Join(z.dir, policiesDir), 0o755); err != nil {
		return nil, fmt.Errorf("zoo: dir: %w", err)
	}
	var quarantined []string

	var man manifest
	manPath := filepath.Join(z.dir, manifestName)
	data, err := os.ReadFile(manPath)
	switch {
	case os.IsNotExist(err):
		// Fresh directory: empty zoo.
	case err != nil:
		return nil, fmt.Errorf("zoo: manifest: %w", err)
	default:
		if decErr := serialize.OpenEnvelope(data, manifestDomain, manifestVersion, &man); decErr != nil {
			if qErr := quarantine(z.dir, manifestName); qErr != nil {
				return nil, fmt.Errorf("zoo: quarantine manifest: %w", qErr)
			}
			quarantined = append(quarantined, manifestName+": "+decErr.Error())
			man = manifest{}
		}
	}

	entries := make([]Entry, 0, len(man.Entries))
	weights := make(map[string][][]float64, len(man.Entries))
	for _, e := range man.Entries {
		name := e.ID + ".json"
		var reason string
		if !policyNameRE.MatchString(name) {
			reason = "manifest entry with malformed policy ID"
		} else if w, loadErr := readPolicy(z.dir, e.ID); loadErr != nil {
			reason = loadErr.Error()
			if qErr := quarantine(filepath.Join(z.dir, policiesDir), name); qErr != nil && !os.IsNotExist(qErr) {
				return nil, fmt.Errorf("zoo: quarantine %s: %w", name, qErr)
			}
		} else {
			entries = append(entries, e)
			weights[e.ID] = w
			continue
		}
		quarantined = append(quarantined, filepath.Join(policiesDir, name)+": "+reason)
	}
	// Stray policy files not referenced by the manifest are left in place:
	// they are harmless (never looked up) and may belong to a concurrent
	// writer that has not yet published its manifest update.

	z.mu.Lock()
	z.entries = entries
	z.weights = weights
	z.mu.Unlock()
	return quarantined, nil
}

// readPolicy loads and verifies one policy file.
func readPolicy(dir, id string) ([][]float64, error) {
	data, err := os.ReadFile(filepath.Join(dir, policiesDir, id+".json"))
	if err != nil {
		return nil, err
	}
	var rec policyRecord
	if err := serialize.OpenEnvelope(data, policyDomain, policyVersion, &rec); err != nil {
		return nil, err
	}
	if rec.ID != id {
		return nil, fmt.Errorf("policy file claims ID %q", rec.ID)
	}
	if len(rec.Weights) == 0 {
		return nil, fmt.Errorf("policy without weights")
	}
	return rec.Weights, nil
}

// quarantine moves one undecodable file into dir/corrupt/.
func quarantine(dir, name string) error {
	qdir := filepath.Join(dir, corruptDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	return os.Rename(filepath.Join(dir, name), filepath.Join(qdir, name))
}

// Add persists a new policy — weights first, manifest second, both under
// atomic checksummed writes — and folds it into the in-memory view. The
// entry's ID is derived from its content; CreatedAtUnix is the caller's
// clock (kept explicit so tests and deterministic sweeps control it). Add
// returns the stored entry.
func (z *Zoo) Add(e Entry, weights [][]float64) (Entry, error) {
	if len(weights) == 0 {
		return Entry{}, fmt.Errorf("zoo: refusing to add a policy without weights")
	}
	e.ID = entryID(e, weights)

	if err := os.MkdirAll(filepath.Join(z.dir, policiesDir), 0o755); err != nil {
		return Entry{}, fmt.Errorf("zoo: dir: %w", err)
	}
	rec := policyRecord{ID: e.ID, Weights: weights}
	path := filepath.Join(z.dir, policiesDir, e.ID+".json")
	if err := serialize.WriteFileAtomic(path, func(w io.Writer) error {
		return serialize.WriteEnvelope(w, policyDomain, policyVersion, rec)
	}); err != nil {
		return Entry{}, fmt.Errorf("zoo: policy: %w", err)
	}

	z.mu.Lock()
	defer z.mu.Unlock()
	replaced := false
	for i := range z.entries {
		if z.entries[i].ID == e.ID {
			z.entries[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		z.entries = append(z.entries, e)
		sort.Slice(z.entries, func(i, k int) bool { return z.entries[i].ID < z.entries[k].ID })
	}
	if z.weights == nil {
		z.weights = make(map[string][][]float64)
	}
	z.weights[e.ID] = weights
	if err := z.writeManifestLocked(); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// writeManifestLocked persists the current entry index; z.mu must be held.
func (z *Zoo) writeManifestLocked() error {
	man := manifest{Entries: z.entries}
	err := serialize.WriteFileAtomic(filepath.Join(z.dir, manifestName), func(w io.Writer) error {
		return serialize.WriteEnvelope(w, manifestDomain, manifestVersion, man)
	})
	if err != nil {
		return fmt.Errorf("zoo: manifest: %w", err)
	}
	return nil
}

// entryID digests an entry's identity — geometry, features, name and the
// weights themselves — into the 32-hex policy ID, so re-adding the same
// trained policy is idempotent and distinct trainings never collide.
func entryID(e Entry, weights [][]float64) string {
	d := failure.NewDigest()
	d.Str("nptsn-zoo-entry-v1")
	d.Str(e.Name)
	d.Str(e.Geometry.Key())
	d.Str(e.Features.Topology)
	d.Int(e.Features.EndStations)
	d.Int(e.Features.Switches)
	d.Int(e.Features.Links)
	d.Int(e.Features.Flows)
	d.Float(e.Features.ReliabilityGoal)
	d.Int(len(weights))
	for _, row := range weights {
		d.Int(len(row))
		for _, v := range row {
			d.Float(v)
		}
	}
	return d.Sum()
}

// Lookup returns the nearest usable policy whose geometry matches exactly
// (weights only import into identically shaped networks), ranked by
// feature distance with the entry ID as the deterministic tie-break. The
// second return is false when no geometry-compatible policy exists.
func (z *Zoo) Lookup(geo Geometry, f Features) (Match, bool) {
	key := geo.Key()
	z.mu.RLock()
	defer z.mu.RUnlock()
	best := Match{Distance: -1}
	for _, e := range z.entries {
		if e.Geometry.Key() != key {
			continue
		}
		d := f.Distance(e.Features)
		if best.Distance < 0 || d < best.Distance || (d == best.Distance && e.ID < best.Entry.ID) {
			best = Match{Entry: e, Weights: z.weights[e.ID], Distance: d}
		}
	}
	return best, best.Distance >= 0
}
