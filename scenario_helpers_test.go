package repro_test

import (
	"testing"

	"repro/internal/scenarios"
)

// mustADS / mustORION build the named scenario or abort the test; the
// builders only fail on programming errors in the scenario definitions.
func mustADS(tb testing.TB) *scenarios.Scenario {
	tb.Helper()
	s, err := scenarios.ADS()
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func mustORION(tb testing.TB) *scenarios.Scenario {
	tb.Helper()
	s, err := scenarios.ORION()
	if err != nil {
		tb.Fatal(err)
	}
	return s
}
