// Benchmarks regenerating the paper's tables and figures (§VI) at reduced
// scale, plus ablation benches for the design choices called out in
// DESIGN.md. Each benchmark prints/reports the same quantity the paper
// plots; absolute numbers differ (pure-Go stack, scaled budgets) but the
// shape — who wins and in which direction parameters move the result — is
// asserted by the test suite and visible in the reported metrics.
package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/asil"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/scenarios"
	"repro/internal/serialize"
	"repro/internal/tsn"
	"repro/internal/zoo"
)

// microCfg is the scaled-down training budget used by the figure benches.
func microCfg(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.GCNHidden = 8
	cfg.MLPHidden = []int{32, 32}
	cfg.K = 8
	cfg.MaxEpoch = 3
	cfg.MaxStep = 64
	cfg.TrainPiIters = 8
	cfg.TrainVIters = 8
	cfg.Seed = seed
	return cfg
}

// BenchmarkTableI_LibraryOps exercises the component-library primitives of
// Table I: switch/link cost lookup and Eq. 1 / Eq. 2 evaluation.
func BenchmarkTableI_LibraryOps(b *testing.B) {
	lib := asil.DefaultLibrary()
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	sw := g.AddVertex("", graph.KindSwitch)
	assign := asil.NewAssignment()
	assign.Switches[sw] = asil.LevelC
	for i := 0; i < 4; i++ {
		if err := g.AddEdge(i, sw, 1); err != nil {
			b.Fatal(err)
		}
		assign.SetLink(i, sw, asil.LevelC)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asil.NetworkCost(g, assign, lib); err != nil {
			b.Fatal(err)
		}
		if _, err := asil.FailureProbability(assign, lib, []int{sw}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_PolicyForwardBackward times one policy forward+backward
// pass of the Table II architecture (GCN-2 + 256x256 MLPs) on an ADS-sized
// observation — the per-step neural cost of the default configuration.
func BenchmarkTableII_PolicyForwardBackward(b *testing.B) {
	scen := mustADS(b)
	prob := scen.Problem(scenarios.ADSFlows(1), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	if err := prob.Validate(); err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig() // Table II as-is
	soag, err := core.NewSOAG(prob, cfg.K)
	if err != nil {
		b.Fatal(err)
	}
	enc := core.NewEncoder(prob, cfg.K)
	nets, err := core.NewNets(rand.New(rand.NewSource(1)), enc, soag.ActionSpaceSize(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	state := core.NewTSSDN(prob)
	set := soag.Generate(state, nbf.Failure{}, []tsn.Pair{{Src: 0, Dst: 6}}, rand.New(rand.NewSource(1)))
	obs := enc.Encode(state, set)
	dLogits := make([]float64, soag.ActionSpaceSize())
	dLogits[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nets.ForwardPolicy(obs)
		nets.BackwardPolicy(dLogits)
	}
}

// benchFig4 runs one reduced ORION test case through the requested
// approaches and reports the figure's quantity via b.ReportMetric.
func benchFig4(b *testing.B, approaches []eval.Approach, metric func(map[eval.Approach]eval.CaseResult) (string, float64)) {
	scen := mustORION(b)
	cfg := microCfg(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flows := scen.RandomFlows(10, int64(i+1))
		prob := scen.Problem(flows, &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
		res, err := eval.RunCase(prob, scen.Original, cfg, cfg, approaches)
		if err != nil {
			b.Fatal(err)
		}
		name, v := metric(res)
		b.ReportMetric(v, name)
	}
}

// BenchmarkFig4a_ReliabilityGuarantee regenerates a Fig. 4(a) sample:
// guarantee outcomes of all four approaches on one ORION case.
func BenchmarkFig4a_ReliabilityGuarantee(b *testing.B) {
	benchFig4(b, eval.AllApproaches(), func(res map[eval.Approach]eval.CaseResult) (string, float64) {
		met := 0.0
		for _, r := range res {
			if r.GuaranteeMet {
				met++
			}
		}
		return "approaches_met", met
	})
}

// BenchmarkFig4b_SolutionCost regenerates a Fig. 4(b) sample: the cost
// ratio Original/NPTSN on one ORION case (the paper reports up to 6.8x).
func BenchmarkFig4b_SolutionCost(b *testing.B) {
	benchFig4(b, []eval.Approach{eval.ApproachOriginal, eval.ApproachNPTSN},
		func(res map[eval.Approach]eval.CaseResult) (string, float64) {
			np := res[eval.ApproachNPTSN]
			orig := res[eval.ApproachOriginal]
			if np.Cost <= 0 {
				return "cost_ratio_orig_over_nptsn", 0
			}
			return "cost_ratio_orig_over_nptsn", orig.Cost / np.Cost
		})
}

// BenchmarkFig4c_ASILDistribution regenerates a Fig. 4(c) sample: the
// share of low-ASIL (A/B) switches in NPTSN's solution.
func BenchmarkFig4c_ASILDistribution(b *testing.B) {
	scen := mustADS(b)
	cfg := microCfg(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prob := scen.Problem(scenarios.ADSFlows(int64(i+1)), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
		res, err := eval.RunCase(prob, nil, cfg, cfg, []eval.Approach{eval.ApproachNPTSN})
		if err != nil {
			b.Fatal(err)
		}
		hist := res[eval.ApproachNPTSN].SwitchLevels
		total, low := 0, 0
		for lvl, n := range hist {
			total += n
			if lvl <= asil.LevelB {
				low += n
			}
		}
		if total > 0 {
			b.ReportMetric(float64(low)/float64(total)*100, "low_asil_switch_%")
		}
	}
}

// benchSensitivity trains one variant per sub-bench on the ADS scenario
// and reports the mean epoch reward — the quantity of the Fig. 5 curves.
func benchSensitivity(b *testing.B, label string, mutate func(*core.Config)) {
	b.Run(label, func(b *testing.B) {
		scen := mustADS(b)
		prob := scen.Problem(scenarios.ADSFlows(1), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
		cfg := microCfg(1)
		mutate(&cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg.Seed = int64(i + 1)
			pl, err := core.NewPlanner(prob, cfg)
			if err != nil {
				b.Fatal(err)
			}
			report, err := pl.Plan()
			if err != nil {
				b.Fatal(err)
			}
			var mean float64
			for _, e := range report.Epochs {
				mean += e.Reward
			}
			b.ReportMetric(mean/float64(len(report.Epochs)), "epoch_reward")
		}
	})
}

// BenchmarkFig5a_GCNLayers regenerates Fig. 5(a): epoch reward for GCN
// depths 0 / 2 / 4 on ADS.
func BenchmarkFig5a_GCNLayers(b *testing.B) {
	benchSensitivity(b, "GCN-0", func(c *core.Config) { c.GCNLayers = 0; c.ActorLR = 1e-4 })
	benchSensitivity(b, "GCN-2", func(c *core.Config) { c.GCNLayers = 2 })
	benchSensitivity(b, "GCN-4", func(c *core.Config) { c.GCNLayers = 4 })
}

// BenchmarkFig5b_MLPSize regenerates Fig. 5(b): epoch reward for MLP
// hidden sizes 64² / 128² / 256² on ADS.
func BenchmarkFig5b_MLPSize(b *testing.B) {
	for _, h := range []int{64, 128, 256} {
		h := h
		benchSensitivity(b, "MLP-"+itoa(h), func(c *core.Config) { c.MLPHidden = []int{h, h} })
	}
}

// BenchmarkFig5c_PathCountK regenerates Fig. 5(c): epoch reward for K = 8
// / 16 / 32 on ADS.
func BenchmarkFig5c_PathCountK(b *testing.B) {
	for _, k := range []int{8, 16, 32} {
		k := k
		benchSensitivity(b, "K-"+itoa(k), func(c *core.Config) { c.K = k })
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblation_SOAGMasking compares exploration with the SOAG's
// degree masks on vs off (§IV-B): without pruning, invalid attempts end
// trajectories early, visible as a higher dead-end rate.
func BenchmarkAblation_SOAGMasking(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"masked", false}, {"unmasked", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			scen := mustADS(b)
			prob := scen.Problem(scenarios.ADSFlows(1), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
			cfg := microCfg(1)
			cfg.DisableSOAGMasking = mode.disable
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				pl, err := core.NewPlanner(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				report, err := pl.Plan()
				if err != nil {
					b.Fatal(err)
				}
				var deadEnds, solutions float64
				for _, e := range report.Epochs {
					deadEnds += float64(e.DeadEnds)
					solutions += float64(e.Solutions)
				}
				b.ReportMetric(deadEnds, "dead_ends")
				b.ReportMetric(solutions, "solutions")
			}
		})
	}
}

// BenchmarkAblation_FailurePruning measures Algorithm 3's superset pruning:
// identical verdicts, fewer NBF simulations.
func BenchmarkAblation_FailurePruning(b *testing.B) {
	// A triple-homed ASIL-B topology at R = 1e-9: maxord 2 and every
	// dual-switch failure survivable, so the full subset lattice is
	// enumerated and the superset cache has something to prune. 4 ES on 4
	// fully meshed switches keeps every degree within the 8-port library.
	gc := graph.New()
	for i := 0; i < 4; i++ {
		gc.AddVertex("", graph.KindEndStation)
	}
	sws := make([]int, 4)
	for i := range sws {
		sws[i] = gc.AddVertex("", graph.KindSwitch)
	}
	for es := 0; es < 4; es++ {
		for _, sw := range sws {
			if err := gc.AddEdge(es, sw, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	for i := range sws {
		for j := i + 1; j < len(sws); j++ {
			if err := gc.AddEdge(sws[i], sws[j], 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	net := tsn.DefaultNetwork()
	flows := tsn.FlowSet{
		{ID: 0, Src: 0, Dsts: []int{1}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64},
		{ID: 1, Src: 2, Dsts: []int{3}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64},
	}
	prob := &core.Problem{
		Connections:     gc,
		Net:             net,
		Flows:           flows,
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-9,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     3,
	}
	if err := prob.Validate(); err != nil {
		b.Fatal(err)
	}
	state := core.NewTSSDN(prob)
	for _, sw := range sws {
		for lvl := 0; lvl < 2; lvl++ { // ASIL-B
			if err := state.UpgradeSwitch(sw); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Full switch mesh keeps residuals connected under dual failures.
	for i := range sws {
		for j := i + 1; j < len(sws); j++ {
			if err := state.AddPath(graph.Path{0, sws[i], sws[j], 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
	for es := 0; es < 4; es++ {
		for k := 0; k < 3; k++ {
			if err := state.AddPath(graph.Path{es, sws[(es+k)%4]}); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"pruned", false}, {"unpruned", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			an := &failure.Analyzer{
				Lib: prob.Library, NBF: prob.NBF, Net: prob.Net, R: 1e-9,
				DisableSupersetPruning: mode.disable,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := an.Analyze(state.Topo, state.Assign, flows)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.NBFCalls), "nbf_calls")
			}
		})
	}
}

// BenchmarkAblation_SwitchOnlyReduction compares Algorithm 3's switch-only
// enumeration (justified by Eq. 6) against brute-force enumeration over
// switches AND links.
func BenchmarkAblation_SwitchOnlyReduction(b *testing.B) {
	scen := mustADS(b)
	flows := scenarios.ADSFlows(1)
	prob := scen.Problem(flows, &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	if err := prob.Validate(); err != nil {
		b.Fatal(err)
	}
	state := core.NewTSSDN(prob)
	for _, sw := range prob.Switches() {
		if err := state.UpgradeSwitch(sw); err != nil { // ASIL-A
			b.Fatal(err)
		}
	}
	for _, es := range prob.EndStations() {
		if err := state.AddPath(graph.Path{es, prob.Switches()[es%4]}); err != nil {
			b.Fatal(err)
		}
		if err := state.AddPath(graph.Path{es, prob.Switches()[(es+1)%4]}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("algorithm3-switch-only", func(b *testing.B) {
		an := &failure.Analyzer{Lib: prob.Library, NBF: prob.NBF, Net: prob.Net, R: 1e-6}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := an.Analyze(state.Topo, state.Assign, flows)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.NBFCalls), "nbf_calls")
		}
	})
	b.Run("bruteforce-all-components", func(b *testing.B) {
		bf := &failure.BruteForce{Lib: prob.Library, NBF: prob.NBF, Net: prob.Net, R: 1e-6}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := bf.Analyze(state.Topo, state.Assign, flows)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.NBFCalls), "nbf_calls")
		}
	})
}

// BenchmarkAblation_StatelessNBF compares the cost of one recovery
// simulation for the stateless greedy NBF vs the rebased incremental
// (stateful) mechanism (§II-B).
func BenchmarkAblation_StatelessNBF(b *testing.B) {
	scen := mustADS(b)
	flows := scenarios.ADSFlows(1)
	topo := scen.Connections.Clone() // fully meshed candidate set as topology
	gf := nbf.Failure{Nodes: []int{12}}
	for _, mech := range []nbf.NBF{
		&nbf.StatelessRecovery{MaxAlternatives: 3},
		nbf.NewRebased(&nbf.IncrementalRecovery{MaxAlternatives: 3}),
	} {
		mech := mech
		b.Run(mech.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := mech.Recover(topo, gf, scen.Net, flows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_PathVsLink contrasts NPTSN's coarse path actions with
// NeuroPlan's individual-link actions on the same budget: the decision
// trajectory length shows up as solutions found per training run.
func BenchmarkAblation_PathVsLink(b *testing.B) {
	scen := mustADS(b)
	prob := scen.Problem(scenarios.ADSFlows(1), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	cfg := microCfg(1)
	b.Run("path-actions-nptsn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Seed = int64(i + 1)
			pl, err := core.NewPlanner(prob, c)
			if err != nil {
				b.Fatal(err)
			}
			report, err := pl.Plan()
			if err != nil {
				b.Fatal(err)
			}
			var solutions float64
			for _, e := range report.Epochs {
				solutions += float64(e.Solutions)
			}
			b.ReportMetric(solutions, "solutions")
		}
	})
	b.Run("link-actions-neuroplan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Seed = int64(i + 1)
			np, err := baselines.NewNeuroPlan(c)
			if err != nil {
				b.Fatal(err)
			}
			_, report, err := np.Plan(prob)
			if err != nil {
				b.Fatal(err)
			}
			var solutions float64
			for _, e := range report.Epochs {
				solutions += float64(e.Solutions)
			}
			b.ReportMetric(solutions, "solutions")
		}
	})
}

// BenchmarkScheduler measures the TT scheduler on an ADS-sized network —
// the inner loop of every NBF simulation.
func BenchmarkScheduler(b *testing.B) {
	scen := mustADS(b)
	flows := scenarios.ADSFlows(1)
	topo := scen.Connections.Clone()
	sched := tsn.Scheduler{MaxAlternatives: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.Schedule(topo, scen.Net, flows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyForward times the pure inference path of the Table II
// policy (GCN-2 trunk + 256x256 actor MLP + masked softmax) on an
// ADS-sized observation — the per-step cost every exploration worker pays.
// "single" evaluates one observation at a time; "batched" evaluates the
// same observations as one row-stacked batch (per-observation cost
// reported), the shape the planner's batched exploration uses.
func BenchmarkPolicyForward(b *testing.B) {
	scen := mustADS(b)
	prob := scen.Problem(scenarios.ADSFlows(1), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	if err := prob.Validate(); err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig() // Table II as-is
	soag, err := core.NewSOAG(prob, cfg.K)
	if err != nil {
		b.Fatal(err)
	}
	enc := core.NewEncoder(prob, cfg.K)
	nets, err := core.NewNets(rand.New(rand.NewSource(1)), enc, soag.ActionSpaceSize(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	state := core.NewTSSDN(prob)
	set := soag.Generate(state, nbf.Failure{}, []tsn.Pair{{Src: 0, Dst: 6}}, rand.New(rand.NewSource(1)))
	obs := enc.Encode(state, set)
	b.Run("single", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nets.ForwardPolicy(obs)
		}
	})
	b.Run("batched", func(b *testing.B) {
		// 8 workers' observations per barrier round, both heads evaluated
		// (the shape planner exploration submits); cost is per observation.
		const batch = 8
		obsBatch := make([]*core.Obs, batch)
		logits := make([][]float64, batch)
		for i := range obsBatch {
			obsBatch[i] = obs
			logits[i] = make([]float64, soag.ActionSpaceSize())
		}
		values := make([]float64, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			nets.ForwardPolicyValueBatch(obsBatch, logits, values)
		}
	})
}

// orionAnalysisState builds the ORION-scale dual-homed topology the
// failure-analysis benchmarks analyze: all switches upgraded, backbone
// rung, every ES dual-homed on its least-loaded candidate switches.
func orionAnalysisState(b *testing.B) (*core.TSSDN, *core.Problem, tsn.FlowSet) {
	b.Helper()
	scen := mustORION(b)
	flows := scen.RandomFlows(20, 1)
	prob := scen.Problem(flows, &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	if err := prob.Validate(); err != nil {
		b.Fatal(err)
	}
	state := core.NewTSSDN(prob)
	sws := prob.Switches()
	for _, sw := range sws {
		if err := state.UpgradeSwitch(sw); err != nil {
			b.Fatal(err)
		}
	}
	// Ring the switches (the original backbone edges exist in Gc) so
	// residual networks stay connected.
	for i := range sws {
		if err := state.AddPath(graph.Path{sws[i], sws[(i+1)%len(sws)]}); err != nil {
			b.Fatal(err)
		}
	}
	// Dual-home every ES on its two least-loaded candidate switches.
	for _, es := range prob.EndStations() {
		var cands []int
		for _, n := range prob.Connections.Neighbors(es) {
			if prob.Connections.Kind(n) == graph.KindSwitch {
				cands = append(cands, n)
			}
		}
		for hook := 0; hook < 2; hook++ {
			best, bestDeg := -1, 1<<30
			for _, sw := range cands {
				if state.Topo.HasEdge(es, sw) {
					continue
				}
				if d := state.Topo.Degree(sw); d < bestDeg && d < prob.Library.MaxSwitchDegree() {
					best, bestDeg = sw, d
				}
			}
			if best == -1 {
				b.Fatal("no attachable switch for end station")
			}
			if err := state.AddPath(graph.Path{es, best}); err != nil {
				b.Fatal(err)
			}
		}
	}
	return state, prob, flows
}

// BenchmarkFailureAnalysisORION measures one full Algorithm 3 run on an
// ORION-scale dual-homed topology — the dominant cost of training (§IV-C).
func BenchmarkFailureAnalysisORION(b *testing.B) {
	state, prob, flows := orionAnalysisState(b)
	an := &failure.Analyzer{Lib: prob.Library, NBF: prob.NBF, Net: prob.Net, R: 1e-6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := an.Analyze(state.Topo, state.Assign, flows)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NBFCalls), "nbf_calls")
	}
}

// BenchmarkFailureAnalysisORIONEngine measures the concurrent, memoized
// analysis engine on the same ORION state: worker-pool fan-out on a cold
// cache, and the warm-cache path that answers every scenario without
// touching the NBF (the regime a planner hits when re-analyzing states
// reached repeatedly across exploration steps).
func BenchmarkFailureAnalysisORIONEngine(b *testing.B) {
	state, prob, flows := orionAnalysisState(b)
	for _, bc := range []struct {
		name    string
		workers int
		warm    bool
	}{
		{"workers-1-cold", 1, false},
		{"workers-4-cold", 4, false},
		{"workers-1-warm", 1, true},
		{"workers-4-warm", 4, true},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			an := &failure.Analyzer{
				Lib: prob.Library, NBF: prob.NBF, Net: prob.Net, R: 1e-6,
				Workers: bc.workers,
			}
			if bc.warm {
				an.Cache = failure.NewCache(1 << 15)
				if _, err := an.Analyze(state.Topo, state.Assign, flows); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !bc.warm {
					// Cold: fresh cache per iteration so every scenario
					// pays for its simulation.
					b.StopTimer()
					an.Cache = failure.NewCache(1 << 15)
					b.StartTimer()
				}
				res, err := an.Analyze(state.Topo, state.Assign, flows)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.NBFCalls), "nbf_calls")
				b.ReportMetric(res.Occupancy, "occupancy")
			}
		})
	}
}

// BenchmarkAblation_GCNvsGAT compares the GCN trunk against the GAT
// alternative §IV-C discusses (and rejects partly for its cost): same
// budget, compare wall-clock per op and epoch reward.
func BenchmarkAblation_GCNvsGAT(b *testing.B) {
	for _, mode := range []struct {
		name string
		gat  bool
	}{{"gcn", false}, {"gat", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			scen := mustADS(b)
			prob := scen.Problem(scenarios.ADSFlows(1), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
			cfg := microCfg(1)
			cfg.UseGAT = mode.gat
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				pl, err := core.NewPlanner(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				report, err := pl.Plan()
				if err != nil {
					b.Fatal(err)
				}
				var mean float64
				for _, e := range report.Epochs {
					mean += e.Reward
				}
				b.ReportMetric(mean/float64(len(report.Epochs)), "epoch_reward")
			}
		})
	}
}

// BenchmarkAblation_MaskedVsExhaustivePaths compares the SOAG's default
// masked-K action generation with the §IV-B alternative that enumerates
// paths until K valid ones are found (slower generation, same coverage).
func BenchmarkAblation_MaskedVsExhaustivePaths(b *testing.B) {
	for _, mode := range []struct {
		name       string
		exhaustive bool
	}{{"masked-k", false}, {"exhaustive", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			scen := mustORION(b)
			prob := scen.Problem(scen.RandomFlows(10, 1), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
			cfg := microCfg(1)
			cfg.ExhaustivePathGeneration = mode.exhaustive
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				pl, err := core.NewPlanner(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				report, err := pl.Plan()
				if err != nil {
					b.Fatal(err)
				}
				var solutions float64
				for _, e := range report.Epochs {
					solutions += float64(e.Solutions)
				}
				b.ReportMetric(solutions, "solutions")
			}
		})
	}
}

// deltaBenchSetup plans a small base problem once and derives a
// single-flow-removal delta from it, shared by the warm/cold delta benches.
var deltaBench struct {
	once    sync.Once
	err     error
	derived *core.Problem
	base    *core.Solution
}

func deltaBenchInit(b *testing.B) (*core.Problem, *core.Solution) {
	b.Helper()
	deltaBench.once.Do(func() {
		s, err := scenarios.Family("mesh", 4, 2)
		if err != nil {
			deltaBench.err = err
			return
		}
		reg := nbf.NewRegistry()
		recovery, err := reg.New("stateless-greedy")
		if err != nil {
			deltaBench.err = err
			return
		}
		prob := s.Problem(s.RandomFlows(3, 1), recovery, 1e-6)
		pl, err := core.NewPlanner(prob, microCfg(1))
		if err != nil {
			deltaBench.err = err
			return
		}
		report, err := pl.Plan()
		if err != nil {
			deltaBench.err = err
			return
		}
		if report.Best == nil {
			deltaBench.err = fmt.Errorf("delta bench: base problem did not solve")
			return
		}
		// Single-flow delta through the real spec-diff path.
		baseSpec := serialize.EncodeProblem(prob, "stateless-greedy")
		derivedSpec, err := serialize.ApplyDelta(baseSpec, serialize.DeltaJSON{RemoveFlows: []int{0}})
		if err != nil {
			deltaBench.err = err
			return
		}
		derived, err := serialize.DecodeProblem(derivedSpec, reg)
		if err != nil {
			deltaBench.err = err
			return
		}
		deltaBench.derived, deltaBench.base = derived, report.Best
	})
	if deltaBench.err != nil {
		b.Fatal(deltaBench.err)
	}
	return deltaBench.derived, deltaBench.base
}

// BenchmarkDeltaColdStart plans a single-flow delta of a solved base from
// scratch — the price of ignoring the base plan.
func BenchmarkDeltaColdStart(b *testing.B) {
	derived, _ := deltaBenchInit(b)
	b.ResetTimer()
	var steps float64
	for i := 0; i < b.N; i++ {
		pl, err := core.NewPlanner(derived, microCfg(1))
		if err != nil {
			b.Fatal(err)
		}
		report, err := pl.Plan()
		if err != nil {
			b.Fatal(err)
		}
		if report.Best == nil {
			b.Fatal("cold run did not solve")
		}
		for _, e := range report.Epochs {
			steps += float64(e.EnvSteps)
		}
	}
	b.ReportMetric(steps/float64(b.N), "envsteps/op")
}

// BenchmarkZooInference answers the same delta through the policy-zoo
// fast path: a greedy inference-only rollout of the policy pretrained on
// the base instance — no PPO, no gradients. Compare envsteps/op and ns/op
// against BenchmarkDeltaColdStart for the amortization the zoo buys.
func BenchmarkZooInference(b *testing.B) {
	derived, _ := deltaBenchInit(b)
	weights := zooBenchWeights(b)
	ctx := context.Background()
	b.ResetTimer()
	var steps float64
	for i := 0; i < b.N; i++ {
		sol, stats, err := zoo.Rollout(ctx, derived, microCfg(1), weights, zoo.RolloutOptions{Streams: 4})
		if err != nil {
			b.Fatal(err)
		}
		if sol == nil {
			b.Fatal("zoo rollout did not solve")
		}
		steps += float64(stats.EnvSteps)
	}
	b.ReportMetric(steps/float64(b.N), "envsteps/op")
}

var zooBench struct {
	once    sync.Once
	err     error
	weights [][]float64
}

// zooBenchWeights pretrains one policy for the delta instance's geometry,
// exactly as an nptsn-pretrain sweep covering this grid point would have —
// the training cost is paid once at init and amortized over every serve.
func zooBenchWeights(b *testing.B) [][]float64 {
	b.Helper()
	derived, _ := deltaBenchInit(b)
	zooBench.once.Do(func() {
		pl, err := core.NewPlanner(derived, microCfg(1))
		if err != nil {
			zooBench.err = err
			return
		}
		report, err := pl.Plan()
		if err != nil {
			zooBench.err = err
			return
		}
		if report.Best == nil {
			zooBench.err = fmt.Errorf("zoo bench: pretraining did not solve")
			return
		}
		zooBench.weights = report.FinalWeights
	})
	if zooBench.err != nil {
		b.Fatal(zooBench.err)
	}
	return zooBench.weights
}

// BenchmarkDeltaWarmStart plans the same delta warm-started from the base
// plan; the surviving seed certifies at init, so no training runs at all.
func BenchmarkDeltaWarmStart(b *testing.B) {
	derived, base := deltaBenchInit(b)
	b.ResetTimer()
	var steps float64
	for i := 0; i < b.N; i++ {
		cfg := microCfg(1)
		cfg.WarmStart = base
		pl, err := core.NewPlanner(derived, cfg)
		if err != nil {
			b.Fatal(err)
		}
		report, err := pl.Plan()
		if err != nil {
			b.Fatal(err)
		}
		if report.Best == nil {
			b.Fatal("warm run did not solve")
		}
		for _, e := range report.Epochs {
			steps += float64(e.EnvSteps)
		}
	}
	b.ReportMetric(steps/float64(b.N), "envsteps/op")
}
