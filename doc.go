// Package repro is the root of the NPTSN reproduction: an RL-based network
// planner with guaranteed reliability for in-vehicle Time-Sensitive
// Software-Defined Networking (TSSDN), after Kong, Nabi & Goossens,
// DSN 2023 (DOI 10.1109/DSN58367.2023.00019).
//
// The implementation lives under internal/:
//
//	graph      undirected graphs, Dijkstra, Yen's K shortest paths
//	asil       ISO 26262 levels, component library, cost model (Eq. 1-2)
//	tsn        TT flows, TAS slot model, the TT scheduler
//	nbf        network behaviour functions (recovery mechanisms)
//	failure    the failure analyzer (Algorithm 3, Eq. 6 reduction)
//	nn         matrices, dense + GCN layers (Eq. 4), Adam, masked softmax
//	rl         PPO (Eq. 5), GAE-λ buffers
//	core       NPTSN: SOAG (Algorithm 1), encoding, planner (Algorithm 2)
//	baselines  Original, TRH [4], NeuroPlan [16]
//	scenarios  ORION [30] and ADS [31] design scenarios
//	eval       the Fig. 4 / Fig. 5 experiment harness
//
// Executables: cmd/nptsn (plan a scenario) and cmd/nptsn-eval (regenerate
// every figure). Runnable examples live under examples/. The root-level
// bench_test.go regenerates each table/figure as a Go benchmark.
package repro
