package repro_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/scenarios"
	"repro/internal/tsn"
)

// randomConstructionState builds a randomized partial TSSDN over a real
// scenario's connection graph: most switches upgraded to a random ASIL,
// a random subset of the candidate edges added (degree violations are
// skipped, like the SOAG mask would). The result ranges from disconnected
// fragments to near-complete dual-homed networks, so both early-Failure
// and deep-enumeration analyzer paths are exercised.
func randomConstructionState(tb testing.TB, prob *core.Problem, rng *rand.Rand) *core.TSSDN {
	tb.Helper()
	state := core.NewTSSDN(prob)
	for _, sw := range prob.Switches() {
		if rng.Float64() < 0.15 {
			continue
		}
		for up := 1 + rng.Intn(4); up > 0; up-- {
			if err := state.UpgradeSwitch(sw); err != nil {
				tb.Fatal(err)
			}
		}
	}
	for _, e := range prob.Connections.Edges() {
		if rng.Float64() < 0.25 {
			continue
		}
		// AddPath rejects paths through unadded switches and degree
		// violations; both are legitimate random outcomes here.
		_ = state.AddPath(graph.Path{e.U, e.V})
	}
	return state
}

// stripVolatile zeroes the observability fields of a Result that
// legitimately depend on scheduling and cache warmth. Everything else —
// OK, Failure, ER, MaxOrder, ScenariosConsidered — must be bit-identical
// between the sequential analyzer and the concurrent, memoized engine.
func stripVolatile(r failure.Result) failure.Result {
	r.NBFCalls = 0
	r.CacheHits = 0
	r.CacheMisses = 0
	r.Duration = 0
	r.Occupancy = 0
	return r
}

// TestAnalysisEngineDifferentialADSORION is the end-to-end determinism
// check on the real scenarios: for randomized ADS and ORION construction
// states and every registry recovery mechanism, the parallel analyzer with
// a shared verdict cache must return results identical to the sequential,
// uncached reference — on both the cold and the warm round.
func TestAnalysisEngineDifferentialADSORION(t *testing.T) {
	reg := nbf.NewRegistry()
	states := 3
	if testing.Short() {
		states = 1
	}
	for _, sc := range []struct {
		name  string
		scen  *scenarios.Scenario
		flows tsn.FlowSet
	}{
		{"ads", mustADS(t), scenarios.ADSFlows(7)},
		{"orion", mustORION(t), nil},
	} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			flows := sc.flows
			if flows == nil {
				flows = sc.scen.RandomFlows(15, 7)
			}
			prob := sc.scen.Problem(flows, &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
			if err := prob.Validate(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < states; i++ {
				state := randomConstructionState(t, prob, rng)
				for _, name := range reg.Names() {
					mech, err := reg.New(name)
					if err != nil {
						t.Fatal(err)
					}
					base := failure.Analyzer{
						Lib: prob.Library, NBF: mech, Net: prob.Net, R: 1e-6,
						FlowLevelRedundancy: name == "flow-redundant-greedy",
					}
					seq := base
					ref, err := seq.Analyze(state.Topo, state.Assign, flows)
					if err != nil {
						t.Fatalf("state %d %s: sequential: %v", i, name, err)
					}
					eng := base
					eng.Workers = 4
					eng.Cache = failure.NewCache(1 << 14)
					for round := 0; round < 2; round++ {
						got, err := eng.Analyze(state.Topo, state.Assign, flows)
						if err != nil {
							t.Fatalf("state %d %s round %d: %v", i, name, round, err)
						}
						if !reflect.DeepEqual(stripVolatile(got), stripVolatile(ref)) {
							t.Fatalf("state %d %s round %d: engine diverged:\n%+v\nvs sequential\n%+v",
								i, name, round, stripVolatile(got), stripVolatile(ref))
						}
					}
				}
			}
		})
	}
}
