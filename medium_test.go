package repro_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/nbf"
)

// TestMediumBudgetTrend reruns fixed ORION 10-flow cases at increasing
// training budgets to document the cost-vs-budget trend quoted in
// EXPERIMENTS.md. It takes ~25 minutes, so it only runs when explicitly
// requested via NPTSN_MEDIUM=1.
func TestMediumBudgetTrend(t *testing.T) {
	if os.Getenv("NPTSN_MEDIUM") == "" {
		t.Skip("set NPTSN_MEDIUM=1 to run the budget-trend experiment (~25 min)")
	}
	scen := mustORION(t)
	budgets := []struct {
		name   string
		epochs int
		steps  int
	}{
		{"small-12x256", 12, 256},
		{"medium-32x384", 32, 384},
	}
	for _, b := range budgets {
		cfg := core.DefaultConfig()
		cfg.GCNHidden = 16
		cfg.MLPHidden = []int{64, 64}
		cfg.TrainPiIters = 20
		cfg.TrainVIters = 20
		cfg.MaxEpoch = b.epochs
		cfg.MaxStep = b.steps
		cfg.Seed = 1
		var costs []float64
		dShare := 0.0
		dTotal := 0.0
		for c := 0; c < 3; c++ {
			flows := scen.RandomFlows(10, int64(1+10*1000+c))
			prob := scen.Problem(flows, &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
			res, err := eval.RunCase(prob, nil, cfg, cfg, []eval.Approach{eval.ApproachNPTSN})
			if err != nil {
				t.Fatal(err)
			}
			r := res[eval.ApproachNPTSN]
			costs = append(costs, r.Cost)
			for lvl, n := range r.SwitchLevels {
				dTotal += float64(n)
				if lvl == asil.LevelD {
					dShare += float64(n)
				}
			}
		}
		mean := (costs[0] + costs[1] + costs[2]) / 3
		fmt.Printf("RESULT %s: mean cost %.1f (cases %v), ASIL-D share %.1f%%\n",
			b.name, mean, costs, dShare/dTotal*100)
	}
}
