#!/bin/sh
# serve_smoke.sh — boot nptsn-serve on an ephemeral port, drive one
# planning job from the shipped example problem through the HTTP API to
# completion, and verify it lands on the /metrics exposition. Exits 0 on
# success; any failure exits non-zero. Needs only a Go toolchain and curl.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building nptsn-serve"
go build -o "$workdir/nptsn-serve" ./cmd/nptsn-serve

"$workdir/nptsn-serve" \
    -addr 127.0.0.1:0 \
    -addr-file "$workdir/addr" \
    -data-dir "$workdir/data" \
    -events "$workdir/events.jsonl" \
    >"$workdir/server.log" 2>&1 &
server_pid=$!

# Wait for the server to publish its bound address.
i=0
while [ ! -s "$workdir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: server never published an address" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve-smoke: server exited during startup" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
base="http://$(cat "$workdir/addr")"
echo "serve-smoke: server at $base"

# Submit the shipped example problem with a small training budget.
{
    printf '{"problem": '
    cat testdata/example-problem.json
    printf ', "params": {"epochs": 2, "steps": 48, "k": 4, "mlpWidth": 16, "gcnLayers": 1, "seed": 2}}'
} >"$workdir/job.json"

submit=$(curl -sS -X POST --data-binary @"$workdir/job.json" "$base/v1/jobs")
job_id=$(printf '%s' "$submit" | sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' | head -n 1)
if [ -z "$job_id" ]; then
    echo "serve-smoke: submission returned no job id: $submit" >&2
    exit 1
fi
echo "serve-smoke: submitted job $job_id"

# Poll until the job is done (or fails).
i=0
state=""
while :; do
    status=$(curl -sS "$base/v1/jobs/$job_id")
    state=$(printf '%s' "$status" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -n 1)
    case "$state" in
    done) break ;;
    failed | cancelled)
        echo "serve-smoke: job ended $state: $status" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "serve-smoke: job stuck in state '$state'" >&2
        exit 1
    fi
    sleep 0.2
done
echo "serve-smoke: job done"

# The result must carry a solution.
result=$(curl -sS "$base/v1/jobs/$job_id/result")
case "$result" in
*'"solution"'*) ;;
*)
    echo "serve-smoke: result has no solution: $result" >&2
    exit 1
    ;;
esac

# The completed job must be visible on the metrics exposition.
metrics=$(curl -sS "$base/metrics")
case "$metrics" in
*"nptsn_service_jobs_done_total 1"*) ;;
*)
    echo "serve-smoke: metrics missing nptsn_service_jobs_done_total 1" >&2
    printf '%s\n' "$metrics" | grep nptsn_service || true
    exit 1
    ;;
esac

echo "serve-smoke: OK"
