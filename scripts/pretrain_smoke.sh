#!/bin/sh
# pretrain_smoke.sh — end-to-end smoke of the policy zoo fast path.
# Sweeps one tiny scenario family with nptsn-pretrain into a fresh zoo
# directory, boots nptsn-serve with -zoo, and submits the swept instance's
# own spec over the wire, asserting the job is answered by inference:
#   provenance "zoo", zero training epochs, a passing certificate attached.
# Also exercises the SIGHUP manifest reload replicas sharing a zoo rely on.
# Exits 0 on success; any failure exits non-zero. Needs Go and curl.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "pretrain-smoke: building nptsn-pretrain and nptsn-serve"
go build -o "$workdir/nptsn-pretrain" ./cmd/nptsn-pretrain
go build -o "$workdir/nptsn-serve" ./cmd/nptsn-serve

# 1. Populate the zoo with one tiny family sweep (mesh, 4 ES, 2 SW).
"$workdir/nptsn-pretrain" \
    -zoo "$workdir/zoo" \
    -dump-specs "$workdir/specs" \
    -families mesh -es 4 -sw 2 -flows 3 \
    -epochs 2 -steps 48 -k 4 -mlp-width 16 -gcn-layers 1 -seed 2 \
    >"$workdir/pretrain.log" 2>&1 || {
    echo "pretrain-smoke: pretrain sweep failed" >&2
    cat "$workdir/pretrain.log" >&2
    exit 1
}
grep -q "added mesh-4es-2sw" "$workdir/pretrain.log" || {
    echo "pretrain-smoke: sweep did not add the expected policy" >&2
    cat "$workdir/pretrain.log" >&2
    exit 1
}
echo "pretrain-smoke: zoo populated ($(ls "$workdir/zoo/policies" | wc -l | tr -d ' ') policy files)"

# 2. Boot a zoo-armed server.
"$workdir/nptsn-serve" \
    -addr 127.0.0.1:0 \
    -addr-file "$workdir/addr" \
    -zoo "$workdir/zoo" \
    >"$workdir/server.log" 2>&1 &
server_pid=$!
i=0
while [ ! -s "$workdir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "pretrain-smoke: server never published an address" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "pretrain-smoke: server exited during startup" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
base="http://$(cat "$workdir/addr")"
grep -q "zoo .* loaded (1 policies)" "$workdir/server.log" || {
    echo "pretrain-smoke: server did not load the zoo" >&2
    cat "$workdir/server.log" >&2
    exit 1
}
echo "pretrain-smoke: server at $base (zoo armed)"

# json_field <json> <key>: first scalar value of "key" (string or number).
json_field() {
    printf '%s' "$1" | sed -n "s/.*\"$2\": *\"\{0,1\}\([0-9a-zA-Z.-]*\)\"\{0,1\}[,}]\{0,1\}.*/\1/p" | head -n 1
}

# 3. Submit the swept instance's own spec with matching geometry knobs.
{
    printf '{"problem": '
    cat "$workdir/specs/mesh-4es-2sw.json"
    printf ', "params": {"epochs": 2, "steps": 48, "k": 4, "mlpWidth": 16, "gcnLayers": 1, "seed": 2}}'
} >"$workdir/job.json"
submit=$(curl -sS -X POST --data-binary @"$workdir/job.json" "$base/v1/jobs")
job_id=$(json_field "$submit" id)
if [ -z "$job_id" ]; then
    echo "pretrain-smoke: submission returned no job id: $submit" >&2
    exit 1
fi

i=0
while :; do
    status=$(curl -sS "$base/v1/jobs/$job_id")
    state=$(json_field "$status" state)
    case "$state" in
    done) break ;;
    failed | cancelled)
        echo "pretrain-smoke: job ended $state: $status" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "pretrain-smoke: job stuck in state '$state'" >&2
        exit 1
    fi
    sleep 0.2
done

# 4. The job must have been answered by the zoo: provenance "zoo", zero
# training epochs, certificate attached.
if [ "$(json_field "$status" provenance)" != "zoo" ]; then
    echo "pretrain-smoke: job not served from the zoo: $status" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi
result=$(curl -sS "$base/v1/jobs/$job_id/result")
if [ "$(json_field "$result" epochs)" != "0" ]; then
    echo "pretrain-smoke: zoo-served job trained epochs: $result" >&2
    exit 1
fi
case "$result" in
*'"certificate"'*) ;;
*)
    echo "pretrain-smoke: zoo result carries no certificate: $result" >&2
    exit 1
    ;;
esac
case "$result" in
*'"solution"'*) ;;
*)
    echo "pretrain-smoke: zoo result has no solution: $result" >&2
    exit 1
    ;;
esac
echo "pretrain-smoke: job $job_id served from the zoo (0 training epochs, certified)"

# 5. Zoo hits land in the metrics.
metrics=$(curl -sS "$base/metrics")
case "$metrics" in
*'nptsn_zoo_hits_total 1'*) ;;
*)
    echo "pretrain-smoke: nptsn_zoo_hits_total did not record the hit" >&2
    exit 1
    ;;
esac

# 6. SIGHUP re-reads the shared manifest without a restart.
kill -HUP "$server_pid"
i=0
until grep -q "zoo reloaded (1 policies)" "$workdir/server.log"; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "pretrain-smoke: SIGHUP did not reload the zoo" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "pretrain-smoke: SIGHUP manifest reload OK"

echo "pretrain-smoke: OK"
