#!/bin/sh
# fleet_smoke.sh — black-box failover drill of the planning fleet: boot
# the nptsn-fleet coordinator plus three nptsn-serve replicas on
# ephemeral ports, submit the shipped example problem through the
# coordinator, kill the replica that owns the job MID-RUN (SIGKILL, no
# drain), and verify the job still completes exactly once, with the dead
# replica reported on /v1/fleet and the handoff on the fleet metrics.
# Exits 0 on success. Needs only a Go toolchain and curl.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

workdir=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do
        if kill -0 "$pid" 2>/dev/null; then
            kill -TERM "$pid" 2>/dev/null || true
        fi
    done
    for pid in $pids; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "fleet-smoke: building nptsn-fleet and nptsn-serve"
go build -o "$workdir/nptsn-fleet" ./cmd/nptsn-fleet
go build -o "$workdir/nptsn-serve" ./cmd/nptsn-serve

# Coordinator with compressed failure-detection timings so the drill
# finishes in seconds: suspect after 300ms of heartbeat silence, dead
# after 800ms.
"$workdir/nptsn-fleet" \
    -addr 127.0.0.1:0 \
    -addr-file "$workdir/fleet.addr" \
    -heartbeat-interval 100ms \
    -suspect-after 300ms \
    -dead-after 800ms \
    -events "$workdir/fleet-events.jsonl" \
    >"$workdir/fleet.log" 2>&1 &
fleet_pid=$!
pids="$fleet_pid"

wait_file() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "fleet-smoke: $1 never appeared" >&2
            cat "$workdir"/*.log >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

wait_file "$workdir/fleet.addr"
base="http://$(cat "$workdir/fleet.addr")"
echo "fleet-smoke: coordinator at $base"

# Three replicas join the fleet. Each carries a seeded 2s planning delay
# so the job is reliably mid-run when its replica is killed.
for r in r1 r2 r3; do
    "$workdir/nptsn-serve" \
        -addr 127.0.0.1:0 \
        -addr-file "$workdir/$r.addr" \
        -fleet "$base" \
        -fleet-id "$r" \
        -fault 'service.plan:delay:delay=2s' \
        >"$workdir/$r.log" 2>&1 &
    eval "pid_$r=$!"
    pids="$pids $!"
    wait_file "$workdir/$r.addr"
done

# All three replicas must report alive before the drill starts.
i=0
while :; do
    alive=$(curl -sS "$base/v1/fleet" | sed -n 's/.*"alive": *\([0-9]*\).*/\1/p' | head -n 1)
    [ "${alive:-0}" = "3" ] && break
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "fleet-smoke: fleet never reached 3 alive replicas" >&2
        curl -sS "$base/v1/fleet" >&2 || true
        exit 1
    fi
    sleep 0.1
done
echo "fleet-smoke: 3 replicas alive"

{
    printf '{"problem": '
    cat testdata/example-problem.json
    printf ', "params": {"epochs": 2, "steps": 48, "k": 4, "mlpWidth": 16, "gcnLayers": 1, "seed": 2}}'
} >"$workdir/job.json"

submit=$(curl -sS -X POST --data-binary @"$workdir/job.json" "$base/v1/jobs")
job_id=$(printf '%s' "$submit" | sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' | head -n 1)
owner=$(printf '%s' "$submit" | sed -n 's/.*"replica": *"\([^"]*\)".*/\1/p' | head -n 1)
if [ -z "$job_id" ] || [ -z "$owner" ]; then
    echo "fleet-smoke: submission not placed: $submit" >&2
    exit 1
fi
echo "fleet-smoke: job $job_id placed on $owner"

# Give the owner a moment to pull the job into its 2s planning delay,
# then kill it without ceremony — no drain, no deregistration.
sleep 0.5
eval "owner_pid=\$pid_$owner"
kill -KILL "$owner_pid"
echo "fleet-smoke: killed $owner (pid $owner_pid) mid-run"

# The job must still complete, served by a surviving replica.
i=0
while :; do
    status=$(curl -sS "$base/v1/jobs/$job_id")
    state=$(printf '%s' "$status" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -n 1)
    case "$state" in
    done) break ;;
    failed | cancelled)
        echo "fleet-smoke: job ended $state: $status" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "fleet-smoke: job stuck in state '$state'" >&2
        curl -sS "$base/v1/fleet" >&2 || true
        exit 1
    fi
    sleep 0.2
done
final_owner=$(printf '%s' "$status" | sed -n 's/.*"replica": *"\([^"]*\)".*/\1/p' | head -n 1)
if [ "$final_owner" = "$owner" ]; then
    echo "fleet-smoke: job claims to have finished on the killed replica" >&2
    exit 1
fi
echo "fleet-smoke: job done on $final_owner after failover"

# The result must carry a solution.
result=$(curl -sS "$base/v1/jobs/$job_id/result")
case "$result" in
*'"solution"'*) ;;
*)
    echo "fleet-smoke: result has no solution: $result" >&2
    exit 1
    ;;
esac

# The control plane recorded the death and the handoff.
fleet=$(curl -sS "$base/v1/fleet")
case "$fleet" in
*'"state": "dead"'*) ;;
*)
    echo "fleet-smoke: /v1/fleet does not report the dead replica: $fleet" >&2
    exit 1
    ;;
esac
metrics=$(curl -sS "$base/metrics")
case "$metrics" in
*"nptsn_fleet_job_handoffs_total"*) ;;
*)
    echo "fleet-smoke: metrics missing nptsn_fleet_job_handoffs_total" >&2
    printf '%s\n' "$metrics" | grep nptsn_fleet || true
    exit 1
    ;;
esac
handoffs=$(printf '%s' "$metrics" | sed -n 's/^nptsn_fleet_job_handoffs_total \([0-9.]*\).*/\1/p' | head -n 1)
case "$handoffs" in
0 | "")
    echo "fleet-smoke: no handoff counted: $handoffs" >&2
    exit 1
    ;;
esac

echo "fleet-smoke: OK"
