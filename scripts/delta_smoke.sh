#!/bin/sh
# delta_smoke.sh — end-to-end smoke of the incremental re-planning path.
# Boots nptsn-serve on an ephemeral port, plans a base job from the shipped
# example problem, then submits three derived jobs against it over the wire:
#   1. an empty delta by job ID     -> answered from the plan cache,
#      bit-stable fingerprint identical to the base;
#   2. a flow-removal delta         -> warm-started from the base plan
#      (instant-solve: zero training epochs);
#   3. an empty delta by base FINGERPRINT after a server restart -> the
#      reseeded spec registry still resolves it to the cached base.
# Exits 0 on success; any failure exits non-zero. Needs Go and curl.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "delta-smoke: building nptsn-serve"
go build -o "$workdir/nptsn-serve" ./cmd/nptsn-serve

start_server() {
    rm -f "$workdir/addr"
    "$workdir/nptsn-serve" \
        -addr 127.0.0.1:0 \
        -addr-file "$workdir/addr" \
        -data-dir "$workdir/data" \
        -verdict-cache 65536 \
        >>"$workdir/server.log" 2>&1 &
    server_pid=$!
    i=0
    while [ ! -s "$workdir/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "delta-smoke: server never published an address" >&2
            cat "$workdir/server.log" >&2
            exit 1
        fi
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "delta-smoke: server exited during startup" >&2
            cat "$workdir/server.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    base="http://$(cat "$workdir/addr")"
}

stop_server() {
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
}

# json_field <json> <key>: first scalar value of "key" (string or number).
json_field() {
    printf '%s' "$1" | sed -n "s/.*\"$2\": *\"\{0,1\}\([0-9a-zA-Z.-]*\)\"\{0,1\}[,}]\{0,1\}.*/\1/p" | head -n 1
}

# wait_done <job-id>: poll the job until done; echoes the final status JSON.
wait_done() {
    i=0
    while :; do
        status=$(curl -sS "$base/v1/jobs/$1")
        state=$(json_field "$status" state)
        case "$state" in
        done)
            printf '%s' "$status"
            return 0
            ;;
        failed | cancelled)
            echo "delta-smoke: job $1 ended $state: $status" >&2
            exit 1
            ;;
        esac
        i=$((i + 1))
        if [ "$i" -gt 600 ]; then
            echo "delta-smoke: job $1 stuck in state '$state'" >&2
            exit 1
        fi
        sleep 0.2
    done
}

start_server
echo "delta-smoke: server at $base"

# Plan the base job.
{
    printf '{"problem": '
    cat testdata/example-problem.json
    printf ', "params": {"epochs": 2, "steps": 48, "k": 4, "mlpWidth": 16, "gcnLayers": 1, "seed": 2}}'
} >"$workdir/base.json"
submit=$(curl -sS -X POST --data-binary @"$workdir/base.json" "$base/v1/jobs")
base_id=$(json_field "$submit" id)
if [ -z "$base_id" ]; then
    echo "delta-smoke: base submission returned no job id: $submit" >&2
    exit 1
fi
base_status=$(wait_done "$base_id")
base_fp=$(json_field "$base_status" fingerprint)
if [ -z "$base_fp" ]; then
    echo "delta-smoke: base job has no fingerprint: $base_status" >&2
    exit 1
fi
echo "delta-smoke: base job $base_id done (fingerprint $base_fp)"

# 1. Empty delta by job ID: a plan-cache hit with the base's fingerprint.
empty=$(curl -sS -X POST -d "{\"base\": \"$base_id\"}" "$base/v1/jobs")
case "$empty" in
*'"cacheHit": true'* | *'"cacheHit":true'*) ;;
*)
    echo "delta-smoke: empty delta missed the plan cache: $empty" >&2
    exit 1
    ;;
esac
if [ "$(json_field "$empty" fingerprint)" != "$base_fp" ]; then
    echo "delta-smoke: empty delta changed the fingerprint: $empty" >&2
    exit 1
fi
echo "delta-smoke: empty delta served from the plan cache"

# 2. Flow-removal delta: warm-starts from the base plan and instant-solves.
delta=$(curl -sS -X POST -d "{\"base\": \"$base_id\", \"delta\": {\"removeFlows\": [0]}}" "$base/v1/jobs")
delta_id=$(json_field "$delta" id)
if [ -z "$delta_id" ]; then
    echo "delta-smoke: delta submission returned no job id: $delta" >&2
    exit 1
fi
delta_status=$(wait_done "$delta_id")
case "$delta_status" in
*'"seedSolved": true'* | *'"seedSolved":true'*) ;;
*)
    echo "delta-smoke: flow-removal delta did not instant-solve from the warm seed: $delta_status" >&2
    exit 1
    ;;
esac
result=$(curl -sS "$base/v1/jobs/$delta_id/result")
case "$result" in
*'"solution"'*) ;;
*)
    echo "delta-smoke: delta result has no solution: $result" >&2
    exit 1
    ;;
esac
if [ "$(json_field "$result" epochs)" != "0" ]; then
    echo "delta-smoke: warm-started delta trained epochs: $result" >&2
    exit 1
fi
echo "delta-smoke: flow-removal delta warm-started (0 training epochs)"

# 3. Restart: the reseeded spec registry must still resolve the base by
# fingerprint and answer the empty delta from the reloaded cache.
stop_server
start_server
echo "delta-smoke: server restarted at $base"
after=$(curl -sS -X POST -d "{\"base\": \"$base_fp\"}" "$base/v1/jobs")
case "$after" in
*'"cacheHit": true'* | *'"cacheHit":true'*) ;;
*)
    echo "delta-smoke: restart lost the base spec or plan cache: $after" >&2
    exit 1
    ;;
esac
if [ "$(json_field "$after" fingerprint)" != "$base_fp" ]; then
    echo "delta-smoke: post-restart empty delta changed the fingerprint: $after" >&2
    exit 1
fi
echo "delta-smoke: base survived the restart; empty delta by fingerprint cached"

echo "delta-smoke: OK"
