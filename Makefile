# Convenience targets for the NPTSN reproduction.

GO ?= go

.PHONY: all build test test-short race vet bench bench-quick eval-micro eval-small examples coverage loc clean certify fuzz

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the concurrent training core (multi-worker
# exploration, panic quarantine, cancellation).
race:
	$(GO) test -race -short ./...

# One iteration of every table/figure/ablation benchmark.
bench-quick:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem .

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Regenerate the evaluation figures at interactive scale.
eval-micro:
	$(GO) run ./cmd/nptsn-eval -fig all -scale micro

eval-small:
	$(GO) run ./cmd/nptsn-eval -fig all -scale small -cases 5 -flows 10,20,30,40,50

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ads
	$(GO) run ./examples/custom-nbf
	$(GO) run ./examples/simulate
	$(GO) run ./examples/orion

# Independent certification audit of the shipped example solution.
certify:
	$(GO) run ./cmd/nptsn-certify -problem testdata/example-problem.json -solution testdata/example-solution.json

# Short coverage-guided fuzzing pass over the untrusted decode paths.
fuzz:
	$(GO) test ./internal/serialize -run '^$$' -fuzz FuzzProblemSpec -fuzztime 20s
	$(GO) test ./internal/serialize -run '^$$' -fuzz FuzzLoadCheckpoint -fuzztime 20s

coverage:
	$(GO) test -cover ./...

loc:
	@find . -name '*.go' | xargs wc -l | tail -1

clean:
	$(GO) clean -testcache
