# Convenience targets for the NPTSN reproduction.

GO ?= go

.PHONY: all build test test-short race race-analyzer race-service chaos chaos-fleet vet lint bench bench-quick bench-json eval-micro eval-small examples coverage loc clean certify fuzz serve-smoke fleet-smoke delta-smoke pretrain-smoke

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: vet always; staticcheck when it is on PATH (CI installs
# it, local setups may not have it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the concurrent training core (multi-worker
# exploration, panic quarantine, cancellation).
race:
	$(GO) test -race -short ./...

# Full (non-short) race pass over the failure-analysis engine and the
# planner that shares its verdict cache across workers.
race-analyzer:
	$(GO) test -race ./internal/failure/... ./internal/core/...

# Full race pass over the planning service (worker pool, cache, drain)
# and the fleet layer built on top of it (coordinator, ring, agent).
race-service:
	$(GO) test -race ./internal/service/... ./internal/fleet/... ./cmd/nptsn-serve/... ./cmd/nptsn-fleet/...

# Black-box smoke test of the nptsn-serve daemon: boot on an ephemeral
# port, plan the shipped example over HTTP, check /metrics.
serve-smoke:
	sh scripts/serve_smoke.sh

# Black-box smoke of the incremental re-planning path: plan a base job,
# then drive an empty delta (plan-cache hit), a flow-removal delta
# (warm-started, zero training epochs) and a post-restart delta by base
# fingerprint through the live HTTP API.
delta-smoke:
	sh scripts/delta_smoke.sh

# Black-box smoke of the policy zoo fast path: pretrain one tiny scenario
# into a fresh zoo with nptsn-pretrain, boot a zoo-armed nptsn-serve, and
# serve that scenario's own spec through the inference-only path — asserting
# provenance "zoo", zero training epochs, a passing certificate, the
# nptsn_zoo_hits_total metric, and a SIGHUP manifest reload.
pretrain-smoke:
	sh scripts/pretrain_smoke.sh

# Black-box failover drill of the planning fleet: coordinator + three
# replicas on ephemeral ports, the job's home replica SIGKILLed mid-run,
# completion asserted on a survivor with the death and handoff visible
# on /v1/fleet and /metrics.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# Seeded fault-injection drills for the job engine: panics, torn writes,
# ENOSPC, crash/restart journaling, hung epochs — under the race detector,
# twice, so nondeterministic schedules get two chances to misbehave. Every
# drill logs its "fault: seed=... schedule=..." line; rerun a failure by
# fixing that seed in the test.
chaos:
	$(GO) test -race -count=2 -run 'Chaos' ./internal/service/... ./internal/fault/...

# Seeded chaos drills for the fleet layer: replica death mid-run, torn
# and hung coordinator→replica HTTP, heartbeat partitions, coordinator
# restart — under the race detector, twice. Every drill asserts the job
# completed exactly once (adoption-by-fingerprint) and logs its seeded
# schedule line for bit-exact reproduction.
chaos-fleet:
	$(GO) test -race -count=2 -run 'ChaosFleet' ./internal/fleet/...

# One iteration of every table/figure/ablation benchmark.
bench-quick:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem .

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Machine-readable run of the analyzer + scheduler + warm-vs-cold delta +
# zoo-inference benchmarks. Writes
# BENCH_<n>.json with the next free index so successive runs are kept
# side by side for before/after comparison.
bench-json:
	@n=0; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	out=BENCH_$$n.json; \
	$(GO) test -run xxx -json \
		-bench 'BenchmarkFailureAnalysisORION|BenchmarkFailureAnalysisORIONEngine|BenchmarkScheduler|BenchmarkPolicyForward|BenchmarkDeltaColdStart|BenchmarkDeltaWarmStart|BenchmarkZooInference' \
		-benchmem . > $$out || { cat $$out; rm -f $$out; exit 1; }; \
	echo "wrote $$out"

# Regenerate the evaluation figures at interactive scale.
eval-micro:
	$(GO) run ./cmd/nptsn-eval -fig all -scale micro

eval-small:
	$(GO) run ./cmd/nptsn-eval -fig all -scale small -cases 5 -flows 10,20,30,40,50

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ads
	$(GO) run ./examples/custom-nbf
	$(GO) run ./examples/simulate
	$(GO) run ./examples/orion

# Independent certification audit of the shipped example solution.
certify:
	$(GO) run ./cmd/nptsn-certify -problem testdata/example-problem.json -solution testdata/example-solution.json

# Short coverage-guided fuzzing pass over the untrusted decode paths.
fuzz:
	$(GO) test ./internal/serialize -run '^$$' -fuzz FuzzProblemSpec -fuzztime 20s
	$(GO) test ./internal/serialize -run '^$$' -fuzz FuzzLoadCheckpoint -fuzztime 20s
	$(GO) test ./internal/zoo -run '^$$' -fuzz FuzzZooManifest -fuzztime 20s

coverage:
	$(GO) test -cover ./...

loc:
	@find . -name '*.go' | xargs wc -l | tail -1

clean:
	$(GO) clean -testcache
