package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunADSMicro(t *testing.T) {
	dir := t.TempDir()
	probPath := filepath.Join(dir, "p.json")
	solPath := filepath.Join(dir, "s.json")
	var out bytes.Buffer
	err := run([]string{
		"-scenario", "ads", "-epochs", "2", "-steps", "48",
		"-k", "4", "-mlp", "16", "-seed", "2",
		"-dump-problem", probPath, "-out", solPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "scenario ads: 12 end stations, 4 optional switches, 54 optional links") {
		t.Fatalf("missing scenario summary:\n%s", text)
	}
	if !strings.Contains(text, "epoch") {
		t.Fatalf("missing training log:\n%s", text)
	}
	if strings.Contains(text, "result: cost") {
		// A solution was found; the JSON artifacts must exist.
		for _, p := range []string{probPath, solPath} {
			if _, err := os.Stat(p); err != nil {
				t.Fatalf("artifact %s missing: %v", p, err)
			}
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "mars"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunUnknownNBF(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nbf", "bogus"}, &out); err == nil {
		t.Fatal("unknown NBF accepted")
	}
}

func TestRunBadFlagValue(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-epochs", "0"}, &out); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestRunDotAndCSVOutputs(t *testing.T) {
	dir := t.TempDir()
	dotPath := filepath.Join(dir, "sol.dot")
	csvPath := filepath.Join(dir, "train.csv")
	var out bytes.Buffer
	err := run([]string{
		"-scenario", "ads", "-epochs", "2", "-steps", "48",
		"-k", "4", "-mlp", "16", "-seed", "2",
		"-dot", dotPath, "-csv", csvPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "result: cost") {
		dot, err := os.ReadFile(dotPath)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(dot), "graph") || !strings.Contains(string(dot), "ASIL-") {
			t.Fatalf("dot output:\n%s", dot)
		}
		csvData, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(csvData), "epoch,reward") {
			t.Fatalf("csv output:\n%s", csvData)
		}
	}
}
