package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunADSMicro(t *testing.T) {
	dir := t.TempDir()
	probPath := filepath.Join(dir, "p.json")
	solPath := filepath.Join(dir, "s.json")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-scenario", "ads", "-epochs", "2", "-steps", "48",
		"-k", "4", "-mlp", "16", "-seed", "2",
		"-dump-problem", probPath, "-out", solPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "scenario ads: 12 end stations, 4 optional switches, 54 optional links") {
		t.Fatalf("missing scenario summary:\n%s", text)
	}
	if !strings.Contains(text, "epoch") {
		t.Fatalf("missing training log:\n%s", text)
	}
	if strings.Contains(text, "result: cost") {
		// A solution was found; the JSON artifacts must exist.
		for _, p := range []string{probPath, solPath} {
			if _, err := os.Stat(p); err != nil {
				t.Fatalf("artifact %s missing: %v", p, err)
			}
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-scenario", "mars"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunUnknownNBF(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-nbf", "bogus"}, &out); err == nil {
		t.Fatal("unknown NBF accepted")
	}
}

func TestRunBadFlagValue(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-epochs", "0"}, &out); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "run.ckpt")
	common := []string{
		"-scenario", "ads", "-steps", "48",
		"-k", "4", "-mlp", "16", "-seed", "2",
	}

	// Reference: 4 epochs straight through.
	var ref bytes.Buffer
	if err := run(context.Background(), append([]string{"-epochs", "4"}, common...), &ref); err != nil {
		t.Fatal(err)
	}

	// First half: 2 epochs with checkpointing.
	var first bytes.Buffer
	args := append([]string{"-epochs", "2", "-checkpoint", ckptPath, "-checkpoint-every", "1"}, common...)
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Second half: resume to 4 epochs.
	var second bytes.Buffer
	args = append([]string{"-epochs", "4", "-resume", ckptPath}, common...)
	if err := run(context.Background(), args, &second); err != nil {
		t.Fatal(err)
	}
	text := second.String()
	if !strings.Contains(text, "resuming from "+ckptPath+" (epoch 2 of 4)") {
		t.Fatalf("missing resume banner:\n%s", text)
	}
	// The final result line of the resumed run must equal the reference's.
	refResult := lastResultLine(ref.String())
	resResult := lastResultLine(text)
	if refResult == "" || refResult != resResult {
		t.Fatalf("resumed result %q differs from reference %q", resResult, refResult)
	}
}

// lastResultLine extracts the "result: ..." line of a run's output.
func lastResultLine(s string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "result:") {
			return line
		}
	}
	return ""
}

func TestRunResumeMissingCheckpoint(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-scenario", "ads", "-epochs", "2", "-steps", "48",
		"-k", "4", "-mlp", "16",
		"-resume", filepath.Join(t.TempDir(), "nope.ckpt"),
	}, &out)
	if err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestRunDotAndCSVOutputs(t *testing.T) {
	dir := t.TempDir()
	dotPath := filepath.Join(dir, "sol.dot")
	csvPath := filepath.Join(dir, "train.csv")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-scenario", "ads", "-epochs", "2", "-steps", "48",
		"-k", "4", "-mlp", "16", "-seed", "2",
		"-dot", dotPath, "-csv", csvPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "result: cost") {
		dot, err := os.ReadFile(dotPath)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(dot), "graph") || !strings.Contains(string(dot), "ASIL-") {
			t.Fatalf("dot output:\n%s", dot)
		}
		csvData, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(csvData), "epoch,reward") {
			t.Fatalf("csv output:\n%s", csvData)
		}
	}
}
