package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/obsv"
)

func TestRunADSMicro(t *testing.T) {
	dir := t.TempDir()
	probPath := filepath.Join(dir, "p.json")
	solPath := filepath.Join(dir, "s.json")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-scenario", "ads", "-epochs", "2", "-steps", "48",
		"-k", "4", "-mlp", "16", "-seed", "2",
		"-dump-problem", probPath, "-out", solPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "scenario ads: 12 end stations, 4 optional switches, 54 optional links") {
		t.Fatalf("missing scenario summary:\n%s", text)
	}
	if !strings.Contains(text, "epoch") {
		t.Fatalf("missing training log:\n%s", text)
	}
	if strings.Contains(text, "result: cost") {
		// A solution was found; the JSON artifacts must exist.
		for _, p := range []string{probPath, solPath} {
			if _, err := os.Stat(p); err != nil {
				t.Fatalf("artifact %s missing: %v", p, err)
			}
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-scenario", "mars"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunUnknownNBF(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-nbf", "bogus"}, &out); err == nil {
		t.Fatal("unknown NBF accepted")
	}
}

func TestRunBadFlagValue(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-epochs", "0"}, &out); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "run.ckpt")
	common := []string{
		"-scenario", "ads", "-steps", "48",
		"-k", "4", "-mlp", "16", "-seed", "2",
	}

	// Reference: 4 epochs straight through.
	var ref bytes.Buffer
	if err := run(context.Background(), append([]string{"-epochs", "4"}, common...), &ref); err != nil {
		t.Fatal(err)
	}

	// First half: 2 epochs with checkpointing.
	var first bytes.Buffer
	args := append([]string{"-epochs", "2", "-checkpoint", ckptPath, "-checkpoint-every", "1"}, common...)
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Second half: resume to 4 epochs.
	var second bytes.Buffer
	args = append([]string{"-epochs", "4", "-resume", ckptPath}, common...)
	if err := run(context.Background(), args, &second); err != nil {
		t.Fatal(err)
	}
	text := second.String()
	if !strings.Contains(text, "resuming from "+ckptPath+" (epoch 2 of 4)") {
		t.Fatalf("missing resume banner:\n%s", text)
	}
	// The final result line of the resumed run must equal the reference's.
	refResult := lastResultLine(ref.String())
	resResult := lastResultLine(text)
	if refResult == "" || refResult != resResult {
		t.Fatalf("resumed result %q differs from reference %q", resResult, refResult)
	}
}

// lastResultLine extracts the "result: ..." line of a run's output.
func lastResultLine(s string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "result:") {
			return line
		}
	}
	return ""
}

func TestRunResumeMissingCheckpoint(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-scenario", "ads", "-epochs", "2", "-steps", "48",
		"-k", "4", "-mlp", "16",
		"-resume", filepath.Join(t.TempDir(), "nope.ckpt"),
	}, &out)
	if err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestRunDotAndCSVOutputs(t *testing.T) {
	dir := t.TempDir()
	dotPath := filepath.Join(dir, "sol.dot")
	csvPath := filepath.Join(dir, "train.csv")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-scenario", "ads", "-epochs", "2", "-steps", "48",
		"-k", "4", "-mlp", "16", "-seed", "2",
		"-dot", dotPath, "-csv", csvPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "result: cost") {
		dot, err := os.ReadFile(dotPath)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(dot), "graph") || !strings.Contains(string(dot), "ASIL-") {
			t.Fatalf("dot output:\n%s", dot)
		}
		csvData, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(csvData), "epoch,reward") {
			t.Fatalf("csv output:\n%s", csvData)
		}
	}
}

// syncWriter is a goroutine-safe output buffer: the metrics test reads the
// CLI's output while run() is still writing to it.
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestRunMetricsAndEvents drives a real training run with the observability
// stack on: it scrapes /metrics until the epoch counter advances, checks
// /healthz and /debug/pprof/, then interrupts the run and verifies the
// event log parses into a convergence summary.
func TestRunMetricsAndEvents(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "run.events")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncWriter
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-scenario", "ads", "-epochs", "256", "-steps", "48",
			"-k", "4", "-mlp", "16", "-seed", "2",
			"-metrics-addr", "127.0.0.1:0",
			"-events", eventsPath,
		}, &out)
	}()

	base := waitForMetricsBanner(t, &out, done)
	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	// Scrape until the epoch counter has advanced past zero.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, body := get("/metrics")
		if metricValue(body, "nptsn_epochs_total") >= 1 &&
			metricValue(body, "nptsn_env_steps_total") >= 48 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters never advanced:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	// Post-training verification of a found solution may fail with the
	// canceled context; only unexpected errors are fatal.
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "interrupted after") {
		t.Fatalf("run did not report interruption:\n%s", out.String())
	}

	events, err := obsv.ReadLog(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	summary, err := eval.SummarizeEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Epochs < 1 || summary.EnvSteps < 48 {
		t.Fatalf("summary too small: %+v", summary)
	}
	if !summary.HasRunOutcome || !summary.Interrupted {
		t.Fatalf("run_end/interrupted missing from log: %+v", summary)
	}
}

// waitForMetricsBanner polls the CLI output for the metrics URL banner.
func waitForMetricsBanner(t *testing.T, out *syncWriter, done <-chan error) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "metrics: ") {
				url := strings.Fields(strings.TrimPrefix(line, "metrics: "))[0]
				return strings.TrimSuffix(url, "/metrics")
			}
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before serving metrics: %v\n%s", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatalf("no metrics banner:\n%s", out.String())
		}
	}
}

// metricValue extracts a sample value from Prometheus text exposition;
// -1 when the series is absent.
func metricValue(body, name string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}
