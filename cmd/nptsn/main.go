// Command nptsn plans an in-vehicle TSSDN for one of the built-in design
// scenarios: it trains the RL-based network generator and prints the best
// topology, ASIL allocation and cost found.
//
// Long training runs are resilient: -checkpoint FILE writes an atomic
// training checkpoint every -checkpoint-every epochs and again on SIGINT/
// SIGTERM, and -resume FILE continues a run from such a checkpoint — with
// the same scenario, seed and hyperparameters, the resumed run reproduces
// the uninterrupted run's per-epoch statistics exactly. An interrupt prints
// the best solution found so far before exiting cleanly.
//
// Examples:
//
//	nptsn -scenario ads -epochs 16 -steps 256
//	nptsn -scenario orion -flows 10 -seed 3 -epochs 8 -steps 128 -workers 2
//	nptsn -scenario ads -epochs 256 -checkpoint run.ckpt -checkpoint-every 16
//	nptsn -scenario ads -epochs 256 -resume run.ckpt -checkpoint run.ckpt
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/obsv"
	"repro/internal/scenarios"
	"repro/internal/serialize"
	"repro/internal/tsn"
	"repro/internal/viz"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nptsn:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nptsn", flag.ContinueOnError)
	var (
		scenarioName = fs.String("scenario", "ads", "design scenario: ads or orion")
		flows        = fs.Int("flows", 0, "number of random TT flows (0 = scenario default)")
		seed         = fs.Int64("seed", 1, "random seed for flows and training")
		epochs       = fs.Int("epochs", 32, "training epochs (paper default 256)")
		steps        = fs.Int("steps", 256, "steps per epoch (paper default 2048)")
		k            = fs.Int("k", 16, "SOAG path actions K")
		gcnLayers    = fs.Int("gcn", 2, "number of GCN layers")
		mlpHidden    = fs.Int("mlp", 256, "actor/critic hidden layer width (two layers)")
		workers      = fs.Int("workers", 1, "parallel exploration workers")
		anWorkers    = fs.Int("analyzer-workers", 1, "failure-analysis worker goroutines per Analyze call (1 = sequential)")
		anCache      = fs.Int("analyzer-cache", 32768, "failure-analysis verdict cache entries shared across workers (0 = disabled)")
		r            = fs.Float64("r", 1e-6, "reliability goal R")
		recovery     = fs.String("nbf", "stateless-greedy", "recovery mechanism (see internal/nbf registry)")
		solutionOut  = fs.String("out", "", "write the solution as JSON to this file")
		problemOut   = fs.String("dump-problem", "", "write the problem as JSON to this file")
		dotOut       = fs.String("dot", "", "write the solution as Graphviz DOT to this file")
		csvOut       = fs.String("csv", "", "write per-epoch training statistics as CSV to this file")
		ckptPath     = fs.String("checkpoint", "", "write training checkpoints to this file (atomic temp+rename)")
		ckptEvery    = fs.Int("checkpoint-every", 8, "epochs between checkpoint writes (with -checkpoint)")
		resumePath   = fs.String("resume", "", "resume training from this checkpoint file")
		metricsAddr  = fs.String("metrics-addr", "", "serve Prometheus /metrics, /healthz and /debug/pprof on this address (e.g. localhost:9090)")
		eventsPath   = fs.String("events", "", "append structured training telemetry as JSON lines to this file")
		doCertify    = fs.Bool("certify", false, "run the independent certification audit and refuse uncertified solutions")
		certOut      = fs.String("certificate", "", "write the certification result as JSON to this file (implies -certify)")
		certSamples  = fs.Int("certify-samples", 256, "Monte Carlo fault-injection trials (with -certify)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scen, err := scenarios.ByName(*scenarioName)
	if err != nil {
		return err
	}

	var flowSet tsn.FlowSet
	if *flows > 0 {
		flowSet = scen.RandomFlows(*flows, *seed)
	} else if *scenarioName == "ads" {
		flowSet = scenarios.ADSFlows(*seed)
	} else {
		flowSet = scen.RandomFlows(10, *seed)
	}

	mech, err := nbf.NewRegistry().New(*recovery)
	if err != nil {
		return err
	}
	prob := scen.Problem(flowSet, mech, *r)
	if err := prob.Validate(); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.GCNLayers = *gcnLayers
	cfg.MLPHidden = []int{*mlpHidden, *mlpHidden}
	cfg.K = *k
	cfg.MaxEpoch = *epochs
	cfg.MaxStep = *steps
	cfg.Workers = *workers
	cfg.AnalyzerWorkers = *anWorkers
	cfg.AnalyzerCacheSize = *anCache
	cfg.Seed = *seed
	if *ckptPath != "" {
		cfg.CheckpointEvery = *ckptEvery
		cfg.CheckpointFunc = func(ck *core.Checkpoint) error {
			return serialize.SaveCheckpoint(*ckptPath, ck)
		}
	}
	if *metricsAddr != "" {
		reg := obsv.NewRegistry()
		srv, err := obsv.StartServer(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		cfg.Metrics = reg
		fmt.Fprintf(out, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", srv.Addr())
	}
	if *eventsPath != "" {
		lg, err := obsv.OpenLog(*eventsPath)
		if err != nil {
			return err
		}
		defer lg.Close()
		cfg.Events = lg
		fmt.Fprintf(out, "telemetry events: %s\n", *eventsPath)
	}
	if *resumePath != "" {
		ck, err := serialize.LoadCheckpoint(*resumePath, prob.Connections)
		if err != nil {
			return err
		}
		cfg.Resume = ck
		fmt.Fprintf(out, "resuming from %s (epoch %d of %d)\n", *resumePath, ck.Epoch, cfg.MaxEpoch)
	}

	fmt.Fprintf(out, "scenario %s: %d end stations, %d optional switches, %d optional links, %d flows\n",
		scen.Name,
		len(prob.EndStations()), len(prob.Switches()), prob.Connections.NumEdges(), len(flowSet))
	fmt.Fprintf(out, "training: %d epochs x %d steps, K=%d, GCN-%d, MLP %dx%d, %d worker(s)\n",
		cfg.MaxEpoch, cfg.MaxStep, cfg.K, cfg.GCNLayers, *mlpHidden, *mlpHidden, cfg.Workers)

	// Live per-epoch reporting through the planner's progress hook: the
	// summary line prints for the first epoch and every 8th, plus the final
	// completed epoch after training returns (its number is unknown while
	// running). Panics and divergence rollbacks always print.
	lastPrinted := 0
	printEpoch := func(e core.EpochStats) {
		fmt.Fprintf(out, "epoch %3d: reward %8.4f  trajectories %3d  solutions %2d  dead-ends %2d  best %.0f\n",
			e.Epoch, e.Reward, e.Trajectories, e.Solutions, e.DeadEnds, e.BestCost)
		lastPrinted = e.Epoch
	}
	cfg.Progress = func(e core.EpochStats) {
		if e.Epoch == 1 || e.Epoch%8 == 0 {
			printEpoch(e)
		}
		for _, p := range e.Panics {
			fmt.Fprintf(out, "epoch %3d: recovered %s\n", e.Epoch, p)
		}
		if e.Divergences > 0 {
			fmt.Fprintf(out, "epoch %3d: %d divergence rollback(s), learning rates halved\n", e.Epoch, e.Divergences)
		}
	}

	planner, err := core.NewPlanner(prob, cfg)
	if err != nil {
		return err
	}
	report, err := planner.PlanContext(ctx)
	if err != nil {
		return err
	}
	if n := len(report.Epochs); n > 0 && report.Epochs[n-1].Epoch != lastPrinted {
		printEpoch(report.Epochs[n-1])
	}

	var anTime time.Duration
	var anHits, anMisses int
	for _, e := range report.Epochs {
		anTime += e.AnalysisTime
		anHits += e.AnalysisCacheHits
		anMisses += e.AnalysisCacheMisses
	}
	if lookups := anHits + anMisses; lookups > 0 {
		fmt.Fprintf(out, "failure analysis: %v wall-clock, verdict cache %.1f%% hits (%d of %d lookups)\n",
			anTime.Round(time.Millisecond), 100*float64(anHits)/float64(lookups), anHits, lookups)
	} else if anTime > 0 {
		fmt.Fprintf(out, "failure analysis: %v wall-clock\n", anTime.Round(time.Millisecond))
	}

	if report.Interrupted {
		fmt.Fprintf(out, "interrupted after %d completed epoch(s)", len(report.Epochs))
		if *ckptPath != "" && len(report.Epochs) > 0 {
			fmt.Fprintf(out, "; checkpoint written to %s (resume with -resume %s)", *ckptPath, *ckptPath)
		}
		fmt.Fprintln(out)
	}

	if !report.GuaranteeMet() {
		fmt.Fprintln(out, "result: no topology satisfying the reliability guarantee was found")
		return nil
	}
	if err := core.VerifySolutionContext(ctx, prob, report.Best); err != nil {
		return fmt.Errorf("solution failed verification: %w", err)
	}
	if *doCertify || *certOut != "" {
		// Post-plan gate: the independent audit must pass before the
		// solution is reported or exported.
		c := &certify.Certifier{
			Prob: prob,
			Sol:  report.Best,
			Opt:  certify.Options{Samples: *certSamples, Seed: *seed, AnalyzerWorkers: *anWorkers},
		}
		cert, err := c.Certify(ctx)
		if err != nil {
			return fmt.Errorf("certification audit: %w", err)
		}
		fmt.Fprint(out, cert.Render())
		if *certOut != "" {
			if err := certify.Write(*certOut, cert); err != nil {
				return err
			}
			fmt.Fprintf(out, "certificate written to %s\n", *certOut)
		}
		if !cert.OK() {
			return fmt.Errorf("solution failed independent certification; refusing to report it")
		}
	}
	fmt.Fprintf(out, "result: cost %.1f (found at epoch %d)\n", report.Best.Cost, report.Best.FoundAtEpoch)
	fmt.Fprint(out, renderSolution(prob, report.Best))
	if err := printLatencies(out, prob, report.Best); err != nil {
		return err
	}
	if *problemOut != "" {
		if err := writeJSONFile(*problemOut, serialize.EncodeProblem(prob, *recovery)); err != nil {
			return err
		}
		fmt.Fprintf(out, "problem written to %s\n", *problemOut)
	}
	if *solutionOut != "" {
		if err := writeJSONFile(*solutionOut, serialize.EncodeSolution(report.Best)); err != nil {
			return err
		}
		fmt.Fprintf(out, "solution written to %s\n", *solutionOut)
	}
	if *dotOut != "" {
		if err := writeFile(*dotOut, func(f io.Writer) error {
			return viz.WriteSolution(f, prob, report.Best, "nptsn "+*scenarioName)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "DOT written to %s\n", *dotOut)
	}
	if *csvOut != "" {
		if err := writeFile(*csvOut, func(f io.Writer) error {
			return eval.WriteTrainingCSV(f, report)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "training CSV written to %s\n", *csvOut)
	}
	return nil
}

// writeFile streams content through fn into path atomically (temp file +
// rename, Close error checked), so a full disk or crash reports an error
// instead of leaving a truncated file that looks like success.
func writeFile(path string, fn func(io.Writer) error) error {
	return serialize.WriteFileAtomic(path, fn)
}

// writeJSONFile persists v as indented JSON, atomically.
func writeJSONFile(path string, v interface{}) error {
	return serialize.WriteFileAtomic(path, func(w io.Writer) error {
		return serialize.WriteJSON(w, v)
	})
}

// renderSolution prints the switches (with ASIL and degree) and links of a
// solution in a stable order.
func renderSolution(prob *core.Problem, sol *core.Solution) string {
	var b strings.Builder
	var sws []int
	for sw := range sol.Assignment.Switches {
		sws = append(sws, sw)
	}
	sort.Ints(sws)
	b.WriteString("switches:\n")
	for _, sw := range sws {
		v := sol.Topology.MustVertex(sw)
		name := v.Name
		if name == "" {
			name = fmt.Sprintf("sw#%d", sw)
		}
		fmt.Fprintf(&b, "  %-16s ASIL-%s  %d ports used\n",
			name, sol.Assignment.Switches[sw], sol.Topology.Degree(sw))
	}
	b.WriteString("links:\n")
	for _, e := range sol.Topology.Edges() {
		fmt.Fprintf(&b, "  %s -- %s  ASIL-%s\n",
			vertexLabel(sol.Topology, e.U), vertexLabel(sol.Topology, e.V),
			sol.Assignment.LinkLevel(e.U, e.V))
	}
	return b.String()
}

// printLatencies reports the worst-case delays of the fault-free schedule
// FI0 on the planned topology.
func printLatencies(out io.Writer, prob *core.Problem, sol *core.Solution) error {
	fi0, er, err := nbf.InitialState(prob.NBF, sol.Topology, prob.Net, prob.Flows)
	if err != nil {
		return err
	}
	if len(er) > 0 {
		return fmt.Errorf("planned network cannot establish FI0 for pairs %v", er)
	}
	lats, err := tsn.Latencies(prob.Net, prob.Flows, fi0)
	if err != nil {
		return err
	}
	if slack, ok := tsn.MinSlack(lats); ok {
		fmt.Fprintf(out, "schedule: max delay %v, min deadline slack %v over %d pairs\n",
			tsn.MaxDelay(lats), slack, len(lats))
	}
	return nil
}

func vertexLabel(g *graph.Graph, id int) string {
	v := g.MustVertex(id)
	if v.Name != "" {
		return v.Name
	}
	return fmt.Sprintf("%s#%d", v.Kind, id)
}
