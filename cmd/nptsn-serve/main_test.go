package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/service"
)

// startServer boots run() on an ephemeral port and returns the base URL
// plus a stop function that signals shutdown and waits for a clean exit.
func startServer(t *testing.T, extra ...string) (baseURL string, out *bytes.Buffer, stop func()) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	ctx, cancel := context.WithCancel(context.Background())
	out = &bytes.Buffer{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, out) }()

	deadline := time.Now().Add(30 * time.Second)
	var addr []byte
	for {
		var err error
		addr, err = os.ReadFile(addrFile)
		if err == nil && len(addr) > 0 {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before binding: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop = func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("server exit: %v\n%s", err, out.String())
			}
		case <-time.After(60 * time.Second):
			t.Error("server did not shut down")
		}
	}
	return "http://" + strings.TrimSpace(string(addr)), out, stop
}

// submitBody is a small planning request over the shipped example problem.
func submitBody(t *testing.T) []byte {
	t.Helper()
	raw, err := os.ReadFile("../../testdata/example-problem.json")
	if err != nil {
		t.Fatal(err)
	}
	var prob json.RawMessage = raw
	body, err := json.Marshal(map[string]interface{}{
		"problem": prob,
		"params":  map[string]interface{}{"epochs": 2, "steps": 48, "k": 4, "mlpWidth": 16, "gcnLayers": 1, "seed": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestServeLifecycleAndRestart(t *testing.T) {
	dataDir := t.TempDir()
	eventsPath := filepath.Join(t.TempDir(), "events.jsonl")

	base, _, stop := startServer(t, "-data-dir", dataDir, "-events", eventsPath)

	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(submitBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st service.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// Poll to completion over HTTP.
	deadline := time.Now().Add(120 * time.Second)
	for {
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, st.ID))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("status: %v\n%s", err, b)
		}
		if st.State == service.StateDone {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The metrics endpoint reports the completed job.
	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !strings.Contains(string(metrics), "nptsn_service_jobs_done_total 1") {
		t.Fatalf("metrics missing done counter:\n%s", metrics)
	}

	stop() // graceful SIGTERM-path shutdown

	// Lifecycle events were recorded.
	events, err := obsv.ReadLog(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, e := range events {
		types = append(types, e.Type)
	}
	for _, want := range []string{service.EventSubmitted, service.EventStart, service.EventDone} {
		found := false
		for _, typ := range types {
			found = found || typ == want
		}
		if !found {
			t.Fatalf("event log lacks %q: %v", want, types)
		}
	}

	// Second life over the same data dir: the finished job is re-served.
	base2, _, stop2 := startServer(t, "-data-dir", dataDir)
	defer stop2()
	r2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", base2, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	resBody, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("re-served result = %d: %s", r2.StatusCode, resBody)
	}
	var res service.Result
	if err := json.Unmarshal(resBody, &res); err != nil {
		t.Fatal(err)
	}
	if res.Solution == nil || res.JobID != st.ID {
		t.Fatalf("re-served result malformed: %s", resBody)
	}

	// And a duplicate submission hits the restored plan cache.
	resp2, err := http.Post(base2+"/v1/jobs", "application/json", bytes.NewReader(submitBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	dupBody, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate after restart = %d, want 200 (cache hit): %s", resp2.StatusCode, dupBody)
	}
}

func TestServeFlagHandling(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"stray"}, &out); err == nil {
		t.Error("stray positional argument accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, &out); err == nil {
		t.Error("unbindable address accepted")
	}
	if err := run(context.Background(), []string{"-fault", "fs.write:nonsense"}, &out); err == nil {
		t.Error("malformed -fault schedule accepted")
	} else if !strings.Contains(err.Error(), "nonsense") {
		t.Errorf("fault-spec error %q does not name the bad token", err)
	}
}

// TestServeFaultFlagEchoesSchedule: a valid -fault spec boots, announces
// the seeded schedule (the repro line for chaos drills), and still serves.
func TestServeFaultFlagEchoesSchedule(t *testing.T) {
	base, out, stop := startServer(t, "-fault", "fs.write:error:p=0", "-fault-seed", "99")
	r, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("list = %d", r.StatusCode)
	}
	// Only read the boot output once the server goroutine has exited —
	// bytes.Buffer is not safe for concurrent read/write.
	stop()
	if !strings.Contains(out.String(), "seed=99") {
		t.Fatalf("boot output lacks the fault seed line:\n%s", out.String())
	}
}
