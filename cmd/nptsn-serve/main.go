// Command nptsn-serve runs the NPTSN planner as a long-lived HTTP service:
// a bounded job queue in front of a pool of independent Planners, with live
// per-epoch progress, a problem-fingerprint plan cache, optional
// independent certification of every winning plan, and atomic JSON
// persistence so finished jobs survive a restart.
//
//	nptsn-serve -addr localhost:8080 -workers 2 -data-dir /var/lib/nptsn
//
//	curl -s -X POST localhost:8080/v1/jobs?certify=1 -d @job.json
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/v1/jobs/<id>/result
//
// SIGINT/SIGTERM drains gracefully: submissions are rejected with 503,
// queued jobs are cancelled, and running jobs get -drain-timeout to finish
// (after which they are interrupted and their best-so-far plan persisted).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/obsv"
	"repro/internal/serialize"
	"repro/internal/service"
	"repro/internal/zoo"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nptsn-serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nptsn-serve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "localhost:8080", "HTTP listen address (use port 0 for an ephemeral port)")
		addrFile     = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		workers      = fs.Int("workers", 1, "planning jobs executed concurrently")
		queueSize    = fs.Int("queue", 16, "waiting-queue capacity; submissions beyond it get HTTP 429")
		dataDir      = fs.String("data-dir", "", "persist finished jobs here and re-serve them after a restart (empty = memory only)")
		jobTimeout   = fs.Duration("job-timeout", 0, "per-job planning deadline unless the request sets its own (0 = none)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long running jobs may finish after SIGTERM before being interrupted")
		eventsPath   = fs.String("events", "", "append JSON-lines job lifecycle events to this file")
		httpTimeout  = fs.Duration("http-timeout", time.Minute, "HTTP read timeout per request; a stalled or malicious client cannot hold a connection open past it (0 = none)")
		stuckTimeout = fs.Duration("stuck-timeout", 0, "fail running jobs whose per-epoch progress heartbeat goes quiet this long (0 = no watchdog)")
		maxAttempts  = fs.Int("max-attempts", 3, "restarts that may re-queue the same journaled job before it is abandoned")
		verdictCache = fs.Int("verdict-cache", 0, "failure-analysis verdicts shared across jobs so delta re-plans reuse the base's work (0 = default 65536, negative = disabled)")
		faultSpec    = fs.String("fault", "", "fault-injection schedule for chaos drills, e.g. 'fs.write:enospc:p=0.1;service.plan:panic:calls=2' (empty = off)")
		faultSeed    = fs.Int64("fault-seed", 1, "seed of the -fault schedule; the same seed replays the same fault decisions")
		fleetURL     = fs.String("fleet", "", "register with the nptsn-fleet coordinator at this base URL and heartbeat until shutdown (empty = standalone)")
		fleetID      = fs.String("fleet-id", "", "stable replica identity on the fleet ring (default: the advertised address); reuse it across restarts to keep this replica's keys")
		fleetAdv     = fs.String("fleet-advertise", "", "base URL the coordinator reaches this replica at (default: http://<bound address>)")
		fleetBeat    = fs.Duration("fleet-heartbeat", 0, "heartbeat pace before the coordinator's registration answer overrides it (0 = 1s)")
		zooDir       = fs.String("zoo", "", "policy zoo directory (from nptsn-pretrain); arms the inference-only fast path — the manifest is re-read on SIGHUP, so replicas can share one zoo")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	reg := obsv.NewRegistry()
	var sink obsv.Sink
	if *eventsPath != "" {
		log, err := obsv.OpenLog(*eventsPath)
		if err != nil {
			return err
		}
		defer log.Close()
		sink = log
	}

	var injector *fault.Injector
	if *faultSpec != "" {
		in, err := fault.Parse(*faultSeed, *faultSpec)
		if err != nil {
			return err
		}
		injector = in
		fmt.Fprintf(out, "nptsn-serve: %s\n", injector)
	}

	var z *zoo.Zoo
	if *zooDir != "" {
		var quarantined []string
		var err error
		z, quarantined, err = zoo.Open(*zooDir)
		if err != nil {
			return err
		}
		for _, q := range quarantined {
			fmt.Fprintf(out, "nptsn-serve: zoo quarantined %s\n", q)
		}
		fmt.Fprintf(out, "nptsn-serve: zoo %s loaded (%d policies)\n", *zooDir, z.Len())
	}

	mgr, err := service.New(service.Options{
		Workers:          *workers,
		QueueSize:        *queueSize,
		Dir:              *dataDir,
		DefaultTimeout:   *jobTimeout,
		StuckTimeout:     *stuckTimeout,
		MaxAttempts:      *maxAttempts,
		VerdictCacheSize: *verdictCache,
		Metrics:          reg,
		Events:           sink,
		Fault:            injector,
		Zoo:              z,
	})
	if err != nil {
		return err
	}

	// SIGHUP re-reads the zoo manifest: a shared zoo directory repopulated
	// by nptsn-pretrain reaches every replica without a restart.
	if z != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				n, err := mgr.ReloadZoo()
				if err != nil {
					fmt.Fprintf(out, "nptsn-serve: zoo reload failed: %v\n", err)
					continue
				}
				fmt.Fprintf(out, "nptsn-serve: zoo reloaded (%d policies)\n", n)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, ln.Addr().String()); err != nil {
			ln.Close()
			return err
		}
	}
	// Bound every connection's read phases so a stalled or malicious
	// client cannot pin a connection forever; responses stay unbounded
	// (result bodies are large and some clients are slow readers), which
	// is why there is no WriteTimeout.
	srv := &http.Server{
		Handler:           service.NewMux(mgr, reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *httpTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(out, "nptsn-serve: listening on http://%s (workers %d, queue %d)\n", ln.Addr(), *workers, *queueSize)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Join the fleet once the API is actually reachable. The agent owns
	// registration retries and heartbeats; cancelling its context at drain
	// time deregisters gracefully, so the coordinator fails this replica's
	// jobs over immediately instead of waiting out the heartbeat timeout.
	agentDone := make(chan struct{})
	agentCancel := func() {}
	if *fleetURL != "" {
		advertise := *fleetAdv
		if advertise == "" {
			advertise = "http://" + ln.Addr().String()
		}
		id := *fleetID
		if id == "" {
			id = advertise
		}
		agent := &fleet.Agent{
			Coordinator:  *fleetURL,
			ID:           id,
			AdvertiseURL: advertise,
			Interval:     *fleetBeat,
			Logf: func(format string, args ...interface{}) {
				fmt.Fprintf(out, format+"\n", args...)
			},
		}
		agentCtx, cancel := context.WithCancel(context.Background())
		agentCancel = cancel
		go func() {
			defer close(agentDone)
			agent.Run(agentCtx)
		}()
	} else {
		close(agentDone)
	}
	defer agentCancel()

	select {
	case err := <-serveErr:
		return err // listener failed before any shutdown signal
	case <-ctx.Done():
	}

	// Leave the fleet before draining: new work must stop routing here
	// while running jobs get their drain window.
	agentCancel()
	<-agentDone

	fmt.Fprintf(out, "nptsn-serve: draining (up to %s)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the job engine; a drain
	// deadline interrupts still-running jobs, whose best-so-far plans are
	// persisted like any other finished job.
	shutdownErr := srv.Shutdown(drainCtx)
	drainErr := mgr.Shutdown(drainCtx)
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return drainErr
	}
	if errors.Is(drainErr, context.DeadlineExceeded) {
		fmt.Fprintln(out, "nptsn-serve: drain deadline hit; running jobs were interrupted")
	} else {
		fmt.Fprintln(out, "nptsn-serve: drained cleanly")
	}
	return nil
}

// writeAddrFile publishes the bound address atomically so scripts polling
// for the file never read a partial write.
func writeAddrFile(path, addr string) error {
	return serialize.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, addr+"\n")
		return err
	})
}
