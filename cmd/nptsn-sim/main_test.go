package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/serialize"
)

// writeFixture builds a tiny valid problem + solution pair on disk.
func writeFixture(t *testing.T, dir string) (string, string) {
	t.Helper()
	g := graph.New()
	g.AddVertex("es0", graph.KindEndStation)
	g.AddVertex("es1", graph.KindEndStation)
	g.AddVertex("swA", graph.KindSwitch)
	g.AddVertex("swB", graph.KindSwitch)
	for es := 0; es < 2; es++ {
		for sw := 2; sw < 4; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	probJSON := serialize.ProblemJSON{
		Connections:     serialize.EncodeGraph(g),
		BasePeriodNs:    500_000,
		SlotsPerBase:    20,
		NBF:             "stateless-greedy",
		ReliabilityGoal: 1e-6,
		MaxESDegree:     2,
		ESLevel:         "D",
		Flows: []serialize.FlowJSON{
			{ID: 0, Src: 0, Dsts: []int{1}, PeriodNs: 500_000, DeadlineNs: 500_000, FrameSize: 64},
		},
	}
	// Dual-homed ASIL-A solution (dual-A failures are safe at 1e-6).
	solJSON := serialize.SolutionJSON{
		Cost: 0,
		Switches: []serialize.SwitchJSON{
			{ID: 2, ASIL: "A"}, {ID: 3, ASIL: "A"},
		},
		Links: []serialize.LinkJSON{
			{U: 0, V: 2, Length: 1, ASIL: "A"}, {U: 0, V: 3, Length: 1, ASIL: "A"},
			{U: 1, V: 2, Length: 1, ASIL: "A"}, {U: 1, V: 3, Length: 1, ASIL: "A"},
		},
	}
	probPath := filepath.Join(dir, "p.json")
	solPath := filepath.Join(dir, "s.json")
	for _, pair := range []struct {
		path string
		v    interface{}
	}{{probPath, probJSON}, {solPath, solJSON}} {
		f, err := os.Create(pair.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := serialize.WriteJSON(f, pair.v); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return probPath, solPath
}

func TestSimCLIRecoverableFailure(t *testing.T) {
	dir := t.TempDir()
	probPath, solPath := writeFixture(t, dir)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-problem", probPath, "-solution", solPath,
		"-horizon", "16", "-fail", "swA@100",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "failure 1 at slot 100") || !strings.Contains(text, "recovered") {
		t.Fatalf("unexpected output:\n%s", text)
	}
}

func TestSimCLIByVertexID(t *testing.T) {
	dir := t.TempDir()
	probPath, solPath := writeFixture(t, dir)
	var out bytes.Buffer
	if err := run(context.Background(), []string{
		"-problem", probPath, "-solution", solPath,
		"-horizon", "8", "-fail", "3@40",
	}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "failure 1 at slot 40") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestSimCLIErrors(t *testing.T) {
	dir := t.TempDir()
	probPath, solPath := writeFixture(t, dir)
	var out bytes.Buffer
	if err := run(context.Background(), nil, &out); err == nil {
		t.Error("missing paths accepted")
	}
	if err := run(context.Background(), []string{"-problem", probPath, "-solution", "/nope.json"}, &out); err == nil {
		t.Error("missing solution file accepted")
	}
	if err := run(context.Background(), []string{"-problem", probPath, "-solution", solPath, "-fail", "swA"}, &out); err == nil {
		t.Error("malformed -fail accepted")
	}
	if err := run(context.Background(), []string{"-problem", probPath, "-solution", solPath, "-fail", "ghost@5"}, &out); err == nil {
		t.Error("unknown vertex accepted")
	}
	if err := run(context.Background(), []string{"-problem", probPath, "-solution", solPath, "-fail", "swA@-2"}, &out); err == nil {
		t.Error("negative slot accepted")
	}
}

func TestSimCLIRejectsInvalidSolution(t *testing.T) {
	dir := t.TempDir()
	probPath, solPath := writeFixture(t, dir)
	// Corrupt the solution: single-homed at ASIL-A leaves a non-safe
	// single point of failure.
	bad := serialize.SolutionJSON{
		Switches: []serialize.SwitchJSON{{ID: 2, ASIL: "A"}},
		Links: []serialize.LinkJSON{
			{U: 0, V: 2, Length: 1, ASIL: "A"},
			{U: 1, V: 2, Length: 1, ASIL: "A"},
		},
	}
	f, err := os.Create(solPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := serialize.WriteJSON(f, bad); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-problem", probPath, "-solution", solPath}, &out); err == nil {
		t.Fatal("invalid solution accepted")
	}
}

var (
	_ = core.Solution{}
	_ = asil.LevelA
)
