// Command nptsn-sim replays a planned TSSDN on the slot-accurate simulator
// under a failure scenario script, reporting frame delivery and recovery
// timelines. It consumes the problem/solution JSON written by
// `nptsn -dump-problem ... -out ...`.
//
//	nptsn -scenario ads -epochs 8 -steps 128 -dump-problem p.json -out s.json
//	nptsn-sim -problem p.json -solution s.json -fail sw0@200 -fail sw1@800
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/serialize"
	"repro/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nptsn-sim:", err)
		os.Exit(1)
	}
}

// failureFlag accumulates repeated -fail name@slot arguments.
type failureFlag []string

func (f *failureFlag) String() string { return strings.Join(*f, ",") }

func (f *failureFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nptsn-sim", flag.ContinueOnError)
	var fails failureFlag
	var (
		problemPath  = fs.String("problem", "", "problem JSON (from nptsn -dump-problem)")
		solutionPath = fs.String("solution", "", "solution JSON (from nptsn -out)")
		horizon      = fs.Int("horizon", 64, "simulation horizon in base periods")
		detection    = fs.Int("detect", -1, "failure detection latency in slots (-1 = one base period)")
		reconfig     = fs.Int("reconfig", -1, "reconfiguration latency in slots (-1 = one base period)")
	)
	fs.Var(&fails, "fail", "failure event as <switch-name-or-id>@<slot>; repeatable")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *problemPath == "" || *solutionPath == "" {
		return fmt.Errorf("both -problem and -solution are required")
	}

	var probJSON serialize.ProblemJSON
	if err := readJSONFile(*problemPath, &probJSON); err != nil {
		return err
	}
	prob, err := serialize.DecodeProblem(probJSON, nbf.NewRegistry())
	if err != nil {
		return err
	}
	var solJSON serialize.SolutionJSON
	if err := readJSONFile(*solutionPath, &solJSON); err != nil {
		return err
	}
	sol, err := serialize.DecodeSolution(solJSON, prob.Connections)
	if err != nil {
		return err
	}
	if err := core.VerifySolutionContext(ctx, prob, sol); err != nil {
		return fmt.Errorf("solution does not satisfy the problem: %w", err)
	}

	events, err := parseFailures(fails, prob.Connections)
	if err != nil {
		return err
	}

	cfg := sim.Config{HorizonBasePeriods: *horizon, DetectionSlots: *detection, ReconfigSlots: *reconfig}
	if cfg.DetectionSlots < 0 {
		cfg.DetectionSlots = prob.Net.SlotsPerBase
	}
	if cfg.ReconfigSlots < 0 {
		cfg.ReconfigSlots = prob.Net.SlotsPerBase
	}
	s := &sim.Simulator{
		Topo:  sol.Topology,
		Net:   prob.Net,
		Flows: prob.Flows,
		NBF:   prob.NBF,
		Cfg:   cfg,
	}
	res, err := s.RunContext(ctx, events)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "simulated %d base periods, %d failure events\n", cfg.HorizonBasePeriods, len(events))
	fmt.Fprintf(out, "frames: %d released, %d delivered, %d lost (%.2f%% delivery)\n",
		res.TotalReleased, res.TotalDelivered, res.TotalLost, res.DeliveryRate()*100)
	for i, rec := range res.Recoveries {
		status := "recovered"
		if !rec.Recovered {
			status = fmt.Sprintf("NOT recovered: %v", rec.UnrecoveredPairs)
		}
		fmt.Fprintf(out, "failure %d at slot %d: effective slot %d, gap losses %d, %s\n",
			i+1, rec.InjectedAt, rec.EffectiveAt, rec.LostDuringGap, status)
	}
	return nil
}

// parseFailures converts -fail name@slot arguments into simulator events.
func parseFailures(fails []string, gc *graph.Graph) ([]sim.Event, error) {
	var events []sim.Event
	for _, f := range fails {
		parts := strings.SplitN(f, "@", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("invalid -fail %q (want name@slot)", f)
		}
		slot, err := strconv.Atoi(parts[1])
		if err != nil || slot < 0 {
			return nil, fmt.Errorf("invalid slot in -fail %q", f)
		}
		id, err := resolveVertex(gc, parts[0])
		if err != nil {
			return nil, err
		}
		events = append(events, sim.Event{Slot: slot, Failure: nbf.Failure{Nodes: []int{id}}})
	}
	return events, nil
}

// resolveVertex finds a vertex by name or numeric ID.
func resolveVertex(gc *graph.Graph, name string) (int, error) {
	for i := 0; i < gc.NumVertices(); i++ {
		if gc.MustVertex(i).Name == name {
			return i, nil
		}
	}
	if id, err := strconv.Atoi(name); err == nil && id >= 0 && id < gc.NumVertices() {
		return id, nil
	}
	return 0, fmt.Errorf("unknown vertex %q", name)
}

func readJSONFile(path string, v interface{}) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := serialize.ReadJSON(f, v); err != nil {
		return fmt.Errorf("read %s: %w", path, err)
	}
	return nil
}
