// Command nptsn-fleet runs the planning-fleet coordinator: one HTTP
// endpoint exposing the same /v1/jobs API a single nptsn-serve replica
// does, fronting N replicas that register and heartbeat with it.
//
//	nptsn-fleet -addr localhost:9090 -heartbeat-interval 1s
//	nptsn-serve -addr localhost:0 -fleet http://localhost:9090 &
//	nptsn-serve -addr localhost:0 -fleet http://localhost:9090 &
//
//	curl -s -X POST localhost:9090/v1/jobs?certify=1 -d @job.json
//	curl -s localhost:9090/v1/fleet
//
// Jobs shard by problem fingerprint on a consistent-hash ring, replicas
// are tracked alive → suspect → dead by heartbeat silence, and the jobs
// of a dead replica are re-served to the next replica on the ring using
// fingerprint adoption, so a failover never plans the same problem twice.
//
// The -fault schedule injects wire-level chaos (point http.roundtrip:
// error, delay, hang, torn response bodies) into every coordinator →
// replica call, for drills against the fleet itself.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/obsv"
	"repro/internal/serialize"
	"repro/internal/zoo"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nptsn-fleet:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nptsn-fleet", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "localhost:9090", "HTTP listen address (use port 0 for an ephemeral port)")
		addrFile     = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		hbInterval   = fs.Duration("heartbeat-interval", time.Second, "pace replicas are told to heartbeat at")
		suspectAfter = fs.Duration("suspect-after", 0, "heartbeat silence before a replica turns suspect (0 = 3x heartbeat)")
		deadAfter    = fs.Duration("dead-after", 0, "heartbeat silence before a replica is declared dead and its jobs fail over (0 = 8x heartbeat)")
		callTimeout  = fs.Duration("call-timeout", 10*time.Second, "deadline per coordinator-to-replica HTTP attempt; hung replicas fail over after it")
		vnodes       = fs.Int("virtual-nodes", 0, "consistent-hash points per replica (0 = 128)")
		eventsPath   = fs.String("events", "", "append JSON-lines fleet lifecycle events to this file")
		httpTimeout  = fs.Duration("http-timeout", time.Minute, "HTTP read timeout per client request (0 = none)")
		faultSpec    = fs.String("fault", "", "fault-injection schedule for chaos drills, e.g. 'http.roundtrip:torn:p=0.2;http.roundtrip:hang:calls=3' (empty = off)")
		faultSeed    = fs.Int64("fault-seed", 1, "seed of the -fault schedule; the same seed replays the same fault decisions")
		zooDir       = fs.String("zoo", "", "shared policy zoo directory; zoo-eligible submissions skip shard routing and spread round-robin across alive replicas")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	reg := obsv.NewRegistry()
	var sink obsv.Sink
	if *eventsPath != "" {
		log, err := obsv.OpenLog(*eventsPath)
		if err != nil {
			return err
		}
		defer log.Close()
		sink = log
	}

	// Replica calls share one transport; a -fault schedule wraps it so
	// every coordinator→replica round trip passes the injector.
	replicaHTTP := &http.Client{}
	if *faultSpec != "" {
		in, err := fault.Parse(*faultSeed, *faultSpec)
		if err != nil {
			return err
		}
		replicaHTTP.Transport = &fault.Transport{In: in}
		fmt.Fprintf(out, "nptsn-fleet: %s\n", in)
	}

	// The coordinator's zoo view is read-only and only steers routing; the
	// replicas open the same directory themselves to actually serve from it.
	var z *zoo.Zoo
	if *zooDir != "" {
		var quarantined []string
		var err error
		z, quarantined, err = zoo.Open(*zooDir)
		if err != nil {
			return err
		}
		for _, q := range quarantined {
			fmt.Fprintf(out, "nptsn-fleet: zoo quarantined %s\n", q)
		}
		fmt.Fprintf(out, "nptsn-fleet: zoo %s loaded (%d policies)\n", *zooDir, z.Len())
	}

	c := fleet.New(fleet.Options{
		HeartbeatInterval: *hbInterval,
		SuspectAfter:      *suspectAfter,
		DeadAfter:         *deadAfter,
		CallTimeout:       *callTimeout,
		VirtualNodes:      *vnodes,
		HTTP:              replicaHTTP,
		Metrics:           reg,
		Events:            sink,
		Zoo:               z,
	})
	defer c.Close()

	// SIGHUP re-reads the shared zoo manifest so routing sees the policies
	// a later nptsn-pretrain sweep added (replicas reload the same way).
	if z != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				quarantined, err := z.Reload()
				if err != nil {
					fmt.Fprintf(out, "nptsn-fleet: zoo reload failed: %v\n", err)
					continue
				}
				for _, q := range quarantined {
					fmt.Fprintf(out, "nptsn-fleet: zoo quarantined %s\n", q)
				}
				fmt.Fprintf(out, "nptsn-fleet: zoo reloaded (%d policies)\n", z.Len())
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, ln.Addr().String()); err != nil {
			ln.Close()
			return err
		}
	}
	srv := &http.Server{
		Handler:           fleet.NewMux(c, reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *httpTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(out, "nptsn-fleet: coordinating on http://%s (heartbeat %s)\n", ln.Addr(), *hbInterval)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// The coordinator holds no job state the replicas don't: shut the
	// listener, stop the monitor, and let replicas finish what they own.
	// A restarted coordinator re-learns the fleet from re-registrations
	// and re-finds finished work through fingerprint adoption.
	fmt.Fprintln(out, "nptsn-fleet: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownErr := srv.Shutdown(shCtx)
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	return nil
}

// writeAddrFile publishes the bound address atomically so scripts polling
// for the file never read a partial write.
func writeAddrFile(path, addr string) error {
	return serialize.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, addr+"\n")
		return err
	})
}
