package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

// startCoordinator boots run() on an ephemeral port and returns the base
// URL plus a stop function that signals shutdown and waits for exit.
func startCoordinator(t *testing.T, extra ...string) (baseURL string, out *bytes.Buffer, stop func()) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	ctx, cancel := context.WithCancel(context.Background())
	out = &bytes.Buffer{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, out) }()

	deadline := time.Now().Add(30 * time.Second)
	var addr []byte
	for {
		var err error
		addr, err = os.ReadFile(addrFile)
		if err == nil && len(addr) > 0 {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("coordinator exited before binding: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop = func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("coordinator exit: %v\n%s", err, out.String())
			}
		case <-time.After(60 * time.Second):
			t.Error("coordinator did not shut down")
		}
	}
	return "http://" + strings.TrimSpace(string(addr)), out, stop
}

// startReplica runs an in-process nptsn-serve equivalent (manager + API
// mux) with a fleet agent heartbeating at the coordinator.
func startReplica(t *testing.T, id, coordinator string) {
	t.Helper()
	m, err := service.New(service.Options{Workers: 1, QueueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewMux(m, nil))
	agentCtx, cancel := context.WithCancel(context.Background())
	agentDone := make(chan struct{})
	agent := &fleet.Agent{Coordinator: coordinator, ID: id, AdvertiseURL: srv.URL, Jitter: 0.1}
	go func() {
		defer close(agentDone)
		agent.Run(agentCtx)
	}()
	t.Cleanup(func() {
		cancel()
		<-agentDone
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
}

// submitBody is a small planning request over the shipped example problem.
func submitBody(t *testing.T) []byte {
	t.Helper()
	raw, err := os.ReadFile("../../testdata/example-problem.json")
	if err != nil {
		t.Fatal(err)
	}
	var prob json.RawMessage = raw
	body, err := json.Marshal(map[string]interface{}{
		"problem": prob,
		"params":  map[string]interface{}{"epochs": 2, "steps": 48, "k": 4, "mlpWidth": 16, "gcnLayers": 1, "seed": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func getJSON(t *testing.T, url string, v interface{}) int {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if v != nil && r.StatusCode < 300 {
		if err := json.Unmarshal(b, v); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, b)
		}
	}
	return r.StatusCode
}

// TestFleetLifecycle: two replicas register, a job submitted to the
// coordinator lands on its home shard, runs to done, and the result is
// served through the coordinator.
func TestFleetLifecycle(t *testing.T) {
	base, _, stop := startCoordinator(t, "-heartbeat-interval", "50ms")
	defer stop()
	startReplica(t, "r1", base)
	startReplica(t, "r2", base)

	// Both replicas show up alive.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var fs fleet.FleetStatus
		getJSON(t, base+"/v1/fleet", &fs)
		if fs.Alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never registered: %+v", fs)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(submitBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st fleet.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Replica == "" {
		t.Fatalf("job not attributed to a replica: %s", body)
	}

	deadline = time.Now().Add(120 * time.Second)
	for {
		getJSON(t, fmt.Sprintf("%s/v1/jobs/%s", base, st.ID), &st)
		if st.State == service.StateDone {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var res service.Result
	if code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s/result", base, st.ID), &res); code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if res.Solution == nil || res.JobID != st.ID {
		t.Fatalf("result malformed: %+v", res)
	}

	// A duplicate submission dedups at the fleet layer: same job ID back.
	resp2, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(submitBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	dup, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate = %d, want 200: %s", resp2.StatusCode, dup)
	}
	var st2 fleet.JobStatus
	if err := json.Unmarshal(dup, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("duplicate got job %s, want dedup onto %s", st2.ID, st.ID)
	}
}

func TestFleetFlagHandling(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"stray"}, &out); err == nil {
		t.Error("stray positional argument accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, &out); err == nil {
		t.Error("unbindable address accepted")
	}
	if err := run(context.Background(), []string{"-fault", "http.roundtrip:nonsense"}, &out); err == nil {
		t.Error("malformed -fault schedule accepted")
	}
}

// TestFleetNoReplicas: with nothing registered, submissions bounce 503.
func TestFleetNoReplicas(t *testing.T) {
	base, _, stop := startCoordinator(t)
	defer stop()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(submitBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with empty fleet = %d, want 503: %s", resp.StatusCode, body)
	}
}
