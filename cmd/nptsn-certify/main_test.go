package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/certify"
	"repro/internal/graph"
	"repro/internal/serialize"
)

// writeFixture builds a problem + solution JSON pair on disk. Dual-homed
// solutions certify; single-homed ones do not.
func writeFixture(t *testing.T, dir string, dualHomed bool) (string, string) {
	t.Helper()
	g := graph.New()
	g.AddVertex("es0", graph.KindEndStation)
	g.AddVertex("es1", graph.KindEndStation)
	g.AddVertex("swA", graph.KindSwitch)
	g.AddVertex("swB", graph.KindSwitch)
	for es := 0; es < 2; es++ {
		for sw := 2; sw < 4; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	probJSON := serialize.ProblemJSON{
		Connections:     serialize.EncodeGraph(g),
		BasePeriodNs:    500_000,
		SlotsPerBase:    20,
		NBF:             "stateless-greedy",
		ReliabilityGoal: 1e-6,
		MaxESDegree:     2,
		ESLevel:         "D",
		Flows: []serialize.FlowJSON{
			{ID: 0, Src: 0, Dsts: []int{1}, PeriodNs: 500_000, DeadlineNs: 500_000, FrameSize: 64},
		},
	}
	solJSON := serialize.SolutionJSON{
		Switches: []serialize.SwitchJSON{{ID: 2, ASIL: "A"}},
		Links: []serialize.LinkJSON{
			{U: 0, V: 2, Length: 1, ASIL: "A"},
			{U: 1, V: 2, Length: 1, ASIL: "A"},
		},
	}
	if dualHomed {
		solJSON.Switches = append(solJSON.Switches, serialize.SwitchJSON{ID: 3, ASIL: "A"})
		solJSON.Links = append(solJSON.Links,
			serialize.LinkJSON{U: 0, V: 3, Length: 1, ASIL: "A"},
			serialize.LinkJSON{U: 1, V: 3, Length: 1, ASIL: "A"})
	}
	probPath := filepath.Join(dir, "p.json")
	solPath := filepath.Join(dir, "s.json")
	for _, pair := range []struct {
		path string
		v    interface{}
	}{{probPath, probJSON}, {solPath, solJSON}} {
		f, err := os.Create(pair.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := serialize.WriteJSON(f, pair.v); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return probPath, solPath
}

func TestCertifyCLIPass(t *testing.T) {
	dir := t.TempDir()
	probPath, solPath := writeFixture(t, dir, true)
	certPath := filepath.Join(dir, "cert.json")
	var out bytes.Buffer
	ok, err := run(context.Background(), []string{
		"-problem", probPath, "-solution", solPath,
		"-cert", certPath, "-samples", "32", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("dual-homed solution failed certification:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "certificate: PASS") {
		t.Fatalf("output:\n%s", out.String())
	}
	f, err := os.Open(certPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var cert certify.Certificate
	if err := serialize.ReadJSON(f, &cert); err != nil {
		t.Fatal(err)
	}
	if !cert.OK() || cert.Seed != 5 || cert.Samples != 32 {
		t.Fatalf("written certificate: %+v", cert)
	}
}

func TestCertifyCLIFailSingleHomed(t *testing.T) {
	dir := t.TempDir()
	probPath, solPath := writeFixture(t, dir, false)
	var out bytes.Buffer
	ok, err := run(context.Background(), []string{
		"-problem", probPath, "-solution", solPath, "-samples", "16",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("single-homed solution certified:\n%s", out.String())
	}
	text := out.String()
	if !strings.Contains(text, "certificate: FAIL") || !strings.Contains(text, "counterexample") {
		t.Fatalf("output:\n%s", text)
	}
}

func TestCertifyCLIErrors(t *testing.T) {
	dir := t.TempDir()
	probPath, solPath := writeFixture(t, dir, true)
	var out bytes.Buffer
	if _, err := run(context.Background(), nil, &out); err == nil {
		t.Error("missing paths accepted")
	}
	if _, err := run(context.Background(), []string{"-problem", probPath, "-solution", "/nope.json"}, &out); err == nil {
		t.Error("missing solution file accepted")
	}
	if _, err := run(context.Background(), []string{"-problem", solPath, "-solution", solPath}, &out); err == nil {
		t.Error("solution passed as problem accepted")
	}
}

func TestCertifyCLICancellation(t *testing.T) {
	dir := t.TempDir()
	probPath, solPath := writeFixture(t, dir, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	if _, err := run(ctx, []string{"-problem", probPath, "-solution", solPath}, &out); err == nil {
		t.Error("cancelled run reported success")
	}
}

func TestCertifyCLIShippedExample(t *testing.T) {
	// The repository ships a trained example solution; certification of it
	// must keep passing, or the committed artifacts have rotted.
	var out bytes.Buffer
	ok, err := run(context.Background(), []string{
		"-problem", "../../testdata/example-problem.json",
		"-solution", "../../testdata/example-solution.json",
		"-samples", "64",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("shipped example failed certification:\n%s", out.String())
	}
}
