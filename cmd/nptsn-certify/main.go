// Command nptsn-certify independently audits a planned TSSDN against its
// problem spec: structural re-validation, independent cost recomputation,
// a re-run of the reliability analysis cross-checked against exhaustive
// switch-and-link brute force on small instances, and a seeded Monte Carlo
// fault-injection campaign through the event simulator. It consumes the
// problem/solution JSON written by `nptsn -dump-problem ... -out ...` and
// emits a machine-readable certificate.
//
//	nptsn -scenario ads -epochs 8 -steps 128 -dump-problem p.json -out s.json
//	nptsn-certify -problem p.json -solution s.json -cert cert.json
//
// Exit status: 0 when the certificate verdict is PASS, 1 on FAIL, 2 when
// the audit itself could not run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/certify"
	"repro/internal/nbf"
	"repro/internal/obsv"
	"repro/internal/serialize"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ok, err := run(ctx, os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nptsn-certify:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) (bool, error) {
	fs := flag.NewFlagSet("nptsn-certify", flag.ContinueOnError)
	var (
		problemPath  = fs.String("problem", "", "problem JSON (from nptsn -dump-problem)")
		solutionPath = fs.String("solution", "", "solution JSON (from nptsn -out)")
		certPath     = fs.String("cert", "", "write the certificate as JSON to this file (atomic)")
		samples      = fs.Int("samples", 256, "Monte Carlo fault-injection trials")
		seed         = fs.Int64("seed", 1, "seed for the fault-injection campaign")
		horizon      = fs.Int("horizon", 16, "simulated base periods per injection trial")
		bruteMax     = fs.Int("brute-max", 14, "component cap for the exhaustive brute-force cross-check")
		splitMax     = fs.Int("split-max", 3, "most events a sampled scenario is split into")
		anWorkers    = fs.Int("analyzer-workers", 1, "failure-analysis worker goroutines per Analyze call (1 = sequential)")
		metricsAddr  = fs.String("metrics-addr", "", "serve Prometheus /metrics, /healthz and /debug/pprof on this address while the audit runs")
	)
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if *metricsAddr != "" {
		// Long brute-force or Monte Carlo audits benefit from live pprof;
		// the registry is served for uniformity with the other binaries.
		srv, err := obsv.StartServer(*metricsAddr, obsv.NewRegistry())
		if err != nil {
			return false, err
		}
		defer srv.Close()
		fmt.Fprintf(out, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", srv.Addr())
	}
	if *problemPath == "" || *solutionPath == "" {
		return false, fmt.Errorf("both -problem and -solution are required")
	}

	var probJSON serialize.ProblemJSON
	if err := readJSONFile(*problemPath, &probJSON); err != nil {
		return false, err
	}
	prob, err := serialize.DecodeProblem(probJSON, nbf.NewRegistry())
	if err != nil {
		return false, err
	}
	var solJSON serialize.SolutionJSON
	if err := readJSONFile(*solutionPath, &solJSON); err != nil {
		return false, err
	}
	sol, err := serialize.DecodeSolution(solJSON, prob.Connections)
	if err != nil {
		return false, err
	}

	c := &certify.Certifier{
		Prob: prob,
		Sol:  sol,
		Opt: certify.Options{
			Samples:            *samples,
			Seed:               *seed,
			HorizonBasePeriods: *horizon,
			MaxBruteComponents: *bruteMax,
			MaxSplitEvents:     *splitMax,
			AnalyzerWorkers:    *anWorkers,
		},
	}
	cert, err := c.Certify(ctx)
	if err != nil {
		return false, err
	}
	fmt.Fprint(out, cert.Render())
	if *certPath != "" {
		if err := certify.Write(*certPath, cert); err != nil {
			return false, err
		}
		fmt.Fprintf(out, "certificate written to %s\n", *certPath)
	}
	return cert.OK(), nil
}

func readJSONFile(path string, v interface{}) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := serialize.ReadJSON(f, v); err != nil {
		return fmt.Errorf("read %s: %w", path, err)
	}
	return nil
}
