package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obsv"
)

func TestScaleConfig(t *testing.T) {
	paper, err := scaleConfig("paper", 1)
	if err != nil {
		t.Fatal(err)
	}
	if paper.MaxEpoch != 256 || paper.MaxStep != 2048 {
		t.Fatalf("paper scale = %+v, want Table II", paper)
	}
	micro, err := scaleConfig("micro", 1)
	if err != nil {
		t.Fatal(err)
	}
	if micro.MaxEpoch >= paper.MaxEpoch {
		t.Fatal("micro should be smaller than paper")
	}
	if _, err := scaleConfig("galactic", 1); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("10, 20,30")
	if err != nil || len(got) != 3 || got[2] != 30 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := parseInts("a,b"); err == nil {
		t.Error("non-numeric accepted")
	}
	if _, err := parseInts("-5"); err == nil {
		t.Error("negative accepted")
	}
}

func TestRunFig5cMicroSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	var out bytes.Buffer
	err := run([]string{"-fig", "5c", "-scale", "micro"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Fig 5(c)") || !strings.Contains(text, "K-16") {
		t.Fatalf("output:\n%s", text)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "huge"}, &out); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-flows", "x"}, &out); err == nil {
		t.Error("bad flows accepted")
	}
}

func TestRunWritesCSVDir(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-fig", "5c", "-scale", "micro", "-csv-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5c.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "epoch,K-8,K-16,K-32") {
		t.Fatalf("csv:\n%s", data)
	}
}

// TestRunEventsSummaryMode: -events switches the binary into log read-back
// mode, printing a convergence summary without training anything.
func TestRunEventsSummaryMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.events")
	lg, err := obsv.OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 1; epoch <= 4; epoch++ {
		err := lg.Emit(obsv.Event{Type: obsv.EventEpoch, Epoch: epoch, V: map[string]float64{
			"reward": float64(epoch) - 4, "trajectories": 2, "solutions": 1,
			"env_steps": 96, "duration_seconds": 0.5, "best_cost": 150,
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Emit(obsv.Event{Type: obsv.EventRunEnd}); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-events", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"convergence summary: 4 epoch(s)", "best 0.0000 @ epoch 4", "cost 150.0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}

	var bad bytes.Buffer
	if err := run([]string{"-events", filepath.Join(t.TempDir(), "missing.events")}, &bad); err == nil {
		t.Fatal("missing event log accepted")
	}
}
