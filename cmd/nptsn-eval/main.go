// Command nptsn-eval regenerates the tables and figures of the paper's
// evaluation section at a configurable scale. The paper's full budget
// (256 epochs × 2048 steps per test case, 50 ORION cases) runs for many
// hours; -scale micro/small trade budget for turnaround while preserving
// the qualitative shape.
//
//	nptsn-eval -fig 4a -scale small
//	nptsn-eval -fig 5c -scale micro
//	nptsn-eval -fig all -scale micro
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/nbf"
	"repro/internal/obsv"
	"repro/internal/scenarios"
	"repro/internal/serialize"
	"repro/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nptsn-eval:", err)
		os.Exit(1)
	}
}

// scaleConfig returns the RL budget for the named scale.
func scaleConfig(scale string, seed int64) (core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	switch scale {
	case "paper":
		// Table II as-is.
	case "small":
		cfg.MaxEpoch = 12
		cfg.MaxStep = 256
		cfg.MLPHidden = []int{64, 64}
		cfg.GCNHidden = 16
		cfg.TrainPiIters = 20
		cfg.TrainVIters = 20
	case "micro":
		cfg.MaxEpoch = 6
		cfg.MaxStep = 96
		cfg.MLPHidden = []int{32, 32}
		cfg.GCNHidden = 8
		cfg.K = 8
		cfg.TrainPiIters = 8
		cfg.TrainVIters = 8
	default:
		return cfg, fmt.Errorf("unknown scale %q (want micro, small or paper)", scale)
	}
	return cfg, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nptsn-eval", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "all", "figure to regenerate: 4a, 4b, 4c, 5a, 5b, 5c, warm, zoo or all (zoo needs -zoo)")
		scale     = fs.String("scale", "micro", "training budget: micro, small or paper")
		cases     = fs.Int("cases", 3, "test cases per flow count (paper: 10)")
		flowsCSV  = fs.String("flows", "10,20,30", "comma-separated flow counts (paper: 10,20,30,40,50)")
		seed      = fs.Int64("seed", 1, "base random seed")
		verbose   = fs.Bool("v", false, "per-case progress output")
		csvDir    = fs.String("csv-dir", "", "also write fig4.csv / fig5<x>.csv into this directory")
		doCert    = fs.Bool("certify", false, "independently certify every produced solution and report PASS rates")
		certSamp  = fs.Int("certify-samples", 64, "Monte Carlo trials per certification audit (with -certify)")
		anWorkers = fs.Int("analyzer-workers", 1, "failure-analysis worker goroutines per Analyze call (1 = sequential)")
		anCache   = fs.Int("analyzer-cache", 32768, "failure-analysis verdict cache entries per run (0 = disabled)")

		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics, /healthz and /debug/pprof on this address (e.g. localhost:9090)")
		eventsPath  = fs.String("events", "", "summarize this training event log (from nptsn -events) and exit")

		warmFamily = fs.String("warm-family", "zonal", "scenario family for -fig warm: "+strings.Join(scenarios.FamilyNames(), ", "))
		warmES     = fs.Int("warm-es", 8, "end stations for -fig warm")
		warmSW     = fs.Int("warm-sw", 4, "switches for -fig warm")
		warmSteps  = fs.Int("warm-steps", 3, "churn-trace steps (re-plans) for -fig warm")

		zooPath   = fs.String("zoo", "", "policy zoo directory for -fig zoo (populate with nptsn-pretrain at the same -scale geometry)")
		zooFamily = fs.String("zoo-family", "mesh", "scenario family for -fig zoo's churn trace")
		zooES     = fs.Int("zoo-es", 4, "end stations for -fig zoo")
		zooSW     = fs.Int("zoo-sw", 4, "switches for -fig zoo")
		zooSteps  = fs.Int("zoo-steps", 3, "churn-trace steps for -fig zoo")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *eventsPath != "" {
		// Read-back mode: no training, just a convergence summary of a
		// previously recorded run.
		events, err := obsv.ReadLog(*eventsPath)
		if err != nil {
			return err
		}
		summary, err := eval.SummarizeEvents(events)
		if err != nil {
			return fmt.Errorf("%s: %w", *eventsPath, err)
		}
		fmt.Fprint(out, summary.Render())
		return nil
	}
	cfg, err := scaleConfig(*scale, *seed)
	if err != nil {
		return err
	}
	cfg.AnalyzerWorkers = *anWorkers
	cfg.AnalyzerCacheSize = *anCache
	if *metricsAddr != "" {
		reg := obsv.NewRegistry()
		srv, err := obsv.StartServer(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		// One shared registry: every run of the harness accumulates into
		// the same series (registration is idempotent).
		cfg.Metrics = reg
		fmt.Fprintf(out, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", srv.Addr())
	}
	flowCounts, err := parseInts(*flowsCSV)
	if err != nil {
		return err
	}

	wantFig4 := *fig == "all" || strings.HasPrefix(*fig, "4")
	wantWarm := *fig == "all" || *fig == "warm"
	// The zoo measurement needs a pretrained zoo on disk, so "all" only
	// includes it when -zoo is set.
	wantZoo := *fig == "zoo" || (*fig == "all" && *zooPath != "")
	wantFig5 := map[string]bool{
		"5a": *fig == "all" || *fig == "5a",
		"5b": *fig == "all" || *fig == "5b",
		"5c": *fig == "all" || *fig == "5c",
	}

	if wantFig4 {
		orion, err := scenarios.ORION()
		if err != nil {
			return err
		}
		progress := func(string, ...interface{}) {}
		if *verbose {
			progress = func(format string, args ...interface{}) {
				fmt.Fprintf(out, format+"\n", args...)
			}
		}
		res, err := eval.RunFig4(eval.Fig4Options{
			Scenario:       orion,
			FlowCounts:     flowCounts,
			Cases:          *cases,
			Seed:           *seed,
			NPTSNCfg:       cfg,
			NeuroPlanCfg:   cfg,
			Progress:       progress,
			Certify:        *doCert,
			CertifyOptions: certify.Options{Samples: *certSamp, Seed: *seed},
		})
		if err != nil {
			return err
		}
		switch *fig {
		case "4a":
			fmt.Fprint(out, res.RenderGuarantee())
		case "4b":
			fmt.Fprint(out, res.RenderCost())
		case "4c":
			fmt.Fprint(out, res.RenderASIL())
		default:
			fmt.Fprint(out, res.RenderGuarantee())
			fmt.Fprintln(out)
			fmt.Fprint(out, res.RenderCost())
			fmt.Fprintln(out)
			fmt.Fprint(out, res.RenderASIL())
			fmt.Fprintln(out)
		}
		if *doCert {
			fmt.Fprint(out, res.RenderCertification())
			fmt.Fprintln(out)
		}
		if *csvDir != "" {
			if err := writeCSV(filepath.Join(*csvDir, "fig4.csv"), res.WriteFig4CSV); err != nil {
				return err
			}
		}
	}

	if wantFig5["5a"] || wantFig5["5b"] || wantFig5["5c"] {
		ads, err := scenarios.ADS()
		if err != nil {
			return err
		}
		prob := ads.Problem(scenarios.ADSFlows(*seed), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)

		if wantFig5["5a"] {
			variants := make([]eval.SensitivityVariant, 0, 3)
			for _, layers := range []int{0, 2, 4} {
				c := cfg
				c.GCNLayers = layers
				if layers == 0 {
					// Matching §VI-B: GCN-0 is unstable at the default
					// actor learning rate; the paper drops it to 1e-4.
					c.ActorLR = 1e-4
				}
				variants = append(variants, eval.SensitivityVariant{Label: fmt.Sprintf("GCN-%d", layers), Cfg: c})
			}
			res, err := eval.RunSensitivity("Fig 5(a): impact of the number of GCN layers (ADS)", prob, variants)
			if err != nil {
				return err
			}
			fmt.Fprint(out, res.Render())
			fmt.Fprintln(out)
			if *csvDir != "" {
				if err := writeCSV(filepath.Join(*csvDir, "fig5a.csv"), res.WriteCurvesCSV); err != nil {
					return err
				}
			}
		}
		if wantFig5["5b"] {
			var variants []eval.SensitivityVariant
			for _, h := range []int{64, 128, 256} {
				c := cfg
				c.MLPHidden = []int{h, h}
				variants = append(variants, eval.SensitivityVariant{Label: fmt.Sprintf("MLP-%dx%d", h, h), Cfg: c})
			}
			res, err := eval.RunSensitivity("Fig 5(b): impact of the MLP hidden layer size (ADS)", prob, variants)
			if err != nil {
				return err
			}
			fmt.Fprint(out, res.Render())
			fmt.Fprintln(out)
			if *csvDir != "" {
				if err := writeCSV(filepath.Join(*csvDir, "fig5b.csv"), res.WriteCurvesCSV); err != nil {
					return err
				}
			}
		}
		if wantFig5["5c"] {
			var variants []eval.SensitivityVariant
			for _, k := range []int{8, 16, 32} {
				c := cfg
				c.K = k
				variants = append(variants, eval.SensitivityVariant{Label: fmt.Sprintf("K-%d", k), Cfg: c})
			}
			res, err := eval.RunSensitivity("Fig 5(c): impact of the number of paths K (ADS)", prob, variants)
			if err != nil {
				return err
			}
			fmt.Fprint(out, res.Render())
			fmt.Fprintln(out)
			if *csvDir != "" {
				if err := writeCSV(filepath.Join(*csvDir, "fig5c.csv"), res.WriteCurvesCSV); err != nil {
					return err
				}
			}
		}
	}

	if wantWarm {
		s, err := scenarios.Family(*warmFamily, *warmES, *warmSW)
		if err != nil {
			return err
		}
		trace, err := scenarios.Churn(scenarios.ChurnOptions{
			Scenario: s, BaseFlows: 4, Steps: *warmSteps,
			AddsPerStep: 1, RemovesPerStep: 1, Seed: *seed,
		})
		if err != nil {
			return err
		}
		res, err := eval.RunWarmCold(trace, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(out, res.Render())
		fmt.Fprintln(out)
	}

	if wantZoo {
		if *zooPath == "" {
			return fmt.Errorf("-fig zoo needs -zoo (populate one with nptsn-pretrain)")
		}
		z, quarantined, err := zoo.Open(*zooPath)
		if err != nil {
			return err
		}
		for _, q := range quarantined {
			fmt.Fprintf(out, "zoo quarantined: %s\n", q)
		}
		s, err := scenarios.Family(*zooFamily, *zooES, *zooSW)
		if err != nil {
			return err
		}
		trace, err := scenarios.Churn(scenarios.ChurnOptions{
			Scenario: s, BaseFlows: 4, Steps: *zooSteps,
			AddsPerStep: 1, RemovesPerStep: 1, Seed: *seed,
		})
		if err != nil {
			return err
		}
		res, err := eval.RunZooChurn(trace, eval.ZooChurnOptions{
			Zoo: z, Cfg: cfg, CertifySamples: *certSamp,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(out, res.Render())
		fmt.Fprintln(out)
	}
	return nil
}

// writeCSV streams CSV content through fn into path atomically (temp file
// + rename, Close error checked), so a short write to a full disk is
// reported instead of leaving a truncated file behind.
func writeCSV(path string, fn func(io.Writer) error) error {
	return serialize.WriteFileAtomic(path, fn)
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid flow count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no flow counts given")
	}
	return out, nil
}
