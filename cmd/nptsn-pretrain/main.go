// Command nptsn-pretrain populates a policy zoo: it sweeps the
// parameterized scenario families (ring, mesh, dualstar, zonal), trains
// one NPTSN policy per scenario instance, and persists the trained
// weights under the zoo's checksummed manifest, keyed by network geometry
// and problem features. A zoo-armed nptsn-serve (or fleet) then answers
// matching submissions by inference-only greedy rollout — certified, with
// zero training epochs — instead of training from scratch.
//
//	nptsn-pretrain -zoo /var/lib/nptsn/zoo -families ring,mesh -es 4,6 -sw 3 -epochs 32
//
// The sweep is deterministic: the same flags always produce the same
// policies (and the same policy IDs, so re-running is idempotent).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/nbf"
	"repro/internal/scenarios"
	"repro/internal/serialize"
	"repro/internal/zoo"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nptsn-pretrain:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nptsn-pretrain", flag.ContinueOnError)
	var (
		zooDir   = fs.String("zoo", "", "zoo directory to populate (required)")
		families = fs.String("families", strings.Join(scenarios.FamilyNames(), ","), "comma-separated scenario families to sweep")
		esList   = fs.String("es", "4,6", "comma-separated end-station counts")
		swList   = fs.String("sw", "4", "comma-separated switch counts")
		flows    = fs.Int("flows", 4, "TT flows per scenario instance")
		goal     = fs.Float64("r", 1e-6, "reliability goal R")
		recovery = fs.String("recovery", "stateless-greedy", "NBF recovery mechanism")
		epochs   = fs.Int("epochs", 32, "training epochs per policy")
		steps    = fs.Int("steps", 256, "environment steps per epoch")
		k        = fs.Int("k", 16, "SOAG path-addition actions")
		mlpWidth = fs.Int("mlp-width", 256, "actor/critic hidden width")
		gcn      = fs.Int("gcn-layers", 2, "graph-convolution layers")
		gcnHid   = fs.Int("gcn-hidden", core.DefaultConfig().GCNHidden, "per-node GCN hidden width (part of the weight geometry — match the serving config)")
		workers  = fs.Int("workers", 1, "exploration workers per training run")
		seed     = fs.Int64("seed", 1, "training and flow-generation seed")
		keepAll  = fs.Bool("keep-unsolved", false, "store policies whose training never found a valid plan (certification still gates them at serve time)")
		specsDir = fs.String("dump-specs", "", "also write each swept instance's problem spec to <dir>/<scenario>.json (submit one to a zoo-armed server to exercise the fast path)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *zooDir == "" {
		return fmt.Errorf("-zoo is required")
	}

	reg := nbf.NewRegistry()
	mech, err := reg.New(*recovery)
	if err != nil {
		return err
	}
	esCounts, err := parseInts(*esList)
	if err != nil {
		return fmt.Errorf("-es: %w", err)
	}
	swCounts, err := parseInts(*swList)
	if err != nil {
		return fmt.Errorf("-sw: %w", err)
	}

	z, quarantined, err := zoo.Open(*zooDir)
	if err != nil {
		return err
	}
	for _, q := range quarantined {
		fmt.Fprintf(out, "quarantined: %s\n", q)
	}

	cfg := core.DefaultConfig()
	cfg.MaxEpoch = *epochs
	cfg.MaxStep = *steps
	cfg.K = *k
	cfg.MLPHidden = []int{*mlpWidth, *mlpWidth}
	cfg.GCNLayers = *gcn
	cfg.GCNHidden = *gcnHid
	cfg.Workers = *workers
	cfg.Seed = *seed

	added, skipped := 0, 0
	for _, fam := range strings.Split(*families, ",") {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			continue
		}
		for _, es := range esCounts {
			for _, sw := range swCounts {
				if err := ctx.Err(); err != nil {
					return err
				}
				s, err := scenarios.Family(fam, es, sw)
				if err != nil {
					// Family constraints (e.g. ring needs >= 3 switches):
					// skip the infeasible grid point, keep sweeping.
					fmt.Fprintf(out, "skip %s-%des-%dsw: %v\n", fam, es, sw, err)
					skipped++
					continue
				}
				prob := s.Problem(s.RandomFlows(*flows, *seed), mech, *goal)
				if *specsDir != "" {
					if err := dumpSpec(*specsDir, s.Name, prob, *recovery); err != nil {
						return fmt.Errorf("%s: %w", s.Name, err)
					}
				}
				start := time.Now()
				planner, err := core.NewPlanner(prob, cfg)
				if err != nil {
					return fmt.Errorf("%s: %w", s.Name, err)
				}
				report, err := planner.PlanContext(ctx)
				if err != nil {
					return fmt.Errorf("%s: %w", s.Name, err)
				}
				solved := report.Best != nil
				if !solved && !*keepAll {
					fmt.Fprintf(out, "skip %s: training found no valid plan in %d epochs (%s)\n",
						s.Name, len(report.Epochs), time.Since(start).Round(time.Millisecond))
					skipped++
					continue
				}
				geo, err := zoo.GeometryOf(prob, cfg)
				if err != nil {
					return fmt.Errorf("%s: %w", s.Name, err)
				}
				entry := zoo.Entry{
					Name:          s.Name,
					Geometry:      geo,
					Features:      zoo.FeaturesOf(prob),
					TrainedEpochs: len(report.Epochs),
					CreatedAtUnix: time.Now().Unix(),
				}
				if solved {
					entry.BestCost = report.Best.Cost
				}
				stored, err := z.Add(entry, report.FinalWeights)
				if err != nil {
					return fmt.Errorf("%s: %w", s.Name, err)
				}
				added++
				fmt.Fprintf(out, "added %s: policy %s, %d epochs, best cost %.2f (%s)\n",
					s.Name, stored.ID[:12], len(report.Epochs), entry.BestCost,
					time.Since(start).Round(time.Millisecond))
			}
		}
	}
	fmt.Fprintf(out, "zoo %s: %d policies (%d added, %d skipped this sweep)\n", *zooDir, z.Len(), added, skipped)
	return nil
}

// dumpSpec writes one swept instance's problem spec as JSON.
func dumpSpec(dir, name string, prob *core.Problem, recovery string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	spec := serialize.EncodeProblem(prob, recovery)
	return serialize.WriteFileAtomic(filepath.Join(dir, name+".json"), func(w io.Writer) error {
		return serialize.WriteJSON(w, spec)
	})
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q is not a positive integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
