package main

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/nbf"
	"repro/internal/serialize"
	"repro/internal/zoo"
)

// tinyArgs returns a sweep small enough to train in milliseconds: one
// mesh grid point at toy geometry.
func tinyArgs(zooDir string, extra ...string) []string {
	args := []string{
		"-zoo", zooDir,
		"-families", "mesh", "-es", "4", "-sw", "2", "-flows", "3",
		"-epochs", "2", "-steps", "24", "-k", "4",
		"-mlp-width", "16", "-gcn-layers", "1", "-seed", "11",
	}
	return append(args, extra...)
}

func TestRunSweepPopulatesZoo(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(context.Background(), tinyArgs(dir), &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "added mesh-4es-2sw") {
		t.Fatalf("sweep did not report the policy:\n%s", out.String())
	}
	z, quarantined, err := zoo.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 0 {
		t.Fatalf("fresh sweep quarantined %v", quarantined)
	}
	if z.Len() != 1 {
		t.Fatalf("zoo holds %d policies, want 1", z.Len())
	}
}

// TestRunSweepIsIdempotent pins the doc claim: the same flags produce the
// same policy ID, so re-running a sweep never duplicates entries.
func TestRunSweepIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	id := regexp.MustCompile(`policy ([0-9a-f]{12})`)
	var first, second strings.Builder
	if err := run(context.Background(), tinyArgs(dir), &first); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), tinyArgs(dir), &second); err != nil {
		t.Fatal(err)
	}
	m1, m2 := id.FindStringSubmatch(first.String()), id.FindStringSubmatch(second.String())
	if m1 == nil || m2 == nil {
		t.Fatalf("no policy ID in output:\n%s\n%s", first.String(), second.String())
	}
	if m1[1] != m2[1] {
		t.Fatalf("re-run changed the policy ID: %s vs %s", m1[1], m2[1])
	}
	z, _, err := zoo.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() != 1 {
		t.Fatalf("idempotent re-run grew the zoo to %d policies", z.Len())
	}
}

// TestRunDumpSpecsWritesDecodableProblem checks the -dump-specs side
// channel: the written spec must decode back into a planner-ready problem
// (it is what the smoke test submits to a zoo-armed server).
func TestRunDumpSpecsWritesDecodableProblem(t *testing.T) {
	dir := t.TempDir()
	specs := filepath.Join(dir, "specs")
	var out strings.Builder
	if err := run(context.Background(), tinyArgs(filepath.Join(dir, "zoo"), "-dump-specs", specs), &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(specs, "mesh-4es-2sw.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var spec serialize.ProblemJSON
	if err := serialize.ReadJSON(f, &spec); err != nil {
		t.Fatalf("dumped spec does not parse: %v", err)
	}
	prob, err := serialize.DecodeProblem(spec, nbf.NewRegistry())
	if err != nil {
		t.Fatalf("dumped spec does not decode: %v", err)
	}
	if len(prob.Flows) != 3 {
		t.Fatalf("dumped spec has %d flows, want 3", len(prob.Flows))
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"missing zoo": {"-families", "mesh"},
		"bad es":      tinyArgs(t.TempDir(), "-es", "zero"),
	}
	for name, args := range cases {
		var out strings.Builder
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("%s: run accepted %v", name, args)
		}
	}
}

// TestRunSkipsInfeasibleGridPoints pins the sweep's soft-skip contract:
// a grid point no family can build (here an unknown family name) is
// reported and skipped, not a sweep-aborting error.
func TestRunSkipsInfeasibleGridPoints(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(context.Background(), tinyArgs(dir, "-families", "hypercube"), &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "skip hypercube-4es-2sw") {
		t.Fatalf("unknown family not reported as a skip:\n%s", out.String())
	}
	z, _, err := zoo.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() != 0 {
		t.Fatalf("skipped sweep stored %d policies", z.Len())
	}
}
